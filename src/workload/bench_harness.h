#pragma once

// Shared command-line front end for the bench binaries and example
// sweeps. Every binary that reproduces a figure/table row accepts the
// same harness flags:
//
//   --threads=N     sweep points fanned across N workers (0 = all cores;
//                   results are bit-identical at any N)
//   --json-out[=P]  write the machine-readable report (default path
//                   BENCH_<experiment>.json)
//   --baseline=P    after the run, compare against a committed baseline
//                   and exit 1 on regression (same rules as bench_check)
//   --tolerance=R   relative tolerance for --baseline comparisons
//   --duration=S    measured seconds per point
//   --seed=S        run-level PRNG seed
//
// plus any bench-specific flags the binary declares. Unknown or duplicate
// flags abort with exit code 2 (a typo must not silently run a default
// sweep).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stats/bench_report.h"
#include "util/flags.h"
#include "workload/cp_chaos_experiment.h"
#include "workload/elibrary_experiment.h"
#include "workload/meshscale_experiment.h"
#include "workload/mtls_experiment.h"
#include "workload/overload_experiment.h"
#include "workload/parsim_experiment.h"
#include "workload/sweep_runner.h"

namespace meshnet::workload {

struct HarnessOptions {
  int threads = 1;
  std::string json_out;   ///< empty = no report file
  std::string baseline;   ///< empty = no comparison
  double tolerance = 1e-9;
  std::int64_t duration_s = 0;
  std::uint64_t seed = 0;
  util::Flags flags;      ///< full parse, for bench-specific extras
};

/// Parses and validates argv against the standard harness flags plus
/// `extra_flags` (and `extra_prefixes`, for embedded libraries like
/// google-benchmark). Exits 2 on unknown/duplicate flags. The experiment
/// id decides the default --json-out path.
HarnessOptions parse_harness_flags(
    int argc, const char* const* argv, std::string_view experiment,
    std::int64_t default_duration_s, std::uint64_t default_seed,
    const std::vector<std::string_view>& extra_flags = {},
    const std::vector<std::string_view>& extra_prefixes = {});

/// SweepOptions matching the parsed flags (progress lines on stderr).
SweepOptions sweep_options(const HarnessOptions& options);

/// Post-run bookkeeping: writes --json-out if requested, then compares
/// against --baseline if given. Returns the process exit code (0 ok,
/// 1 regression, 2 I/O or parse failure).
int finish_harness(const stats::BenchReport& report,
                   const HarnessOptions& options);

/// Process-lifetime count of global operator-new calls. The strong
/// definition lives in bench/alloc_counter.cc (its counting allocator is
/// linked into every bench binary); elsewhere a weak zero-returning
/// default applies and the allocation profile is simply omitted from
/// reports. finish_harness uses it for wall_allocs_per_event.
std::uint64_t bench_allocation_count() noexcept;

/// The standard metric set for one e-library experiment run: per-workload
/// p50/p90/p99/mean, success rate, completion/error/event counters and
/// the raw latency histograms.
PointMetrics elibrary_point_metrics(const ElibraryExperimentResult& result);

/// The standard metric set for one OVERLOAD experiment arm: per-workload
/// latency scalars, admission/shed/retry counters, latency histograms
/// and the unified metrics snapshot. Shared by examples/overload_elibrary
/// and the OverloadDeterminism golden so both compare the same surface.
PointMetrics overload_point_metrics(const OverloadExperimentResult& result);

/// The standard metric set for one CHAOS_CP experiment arm: per-phase LS
/// goodput, push-channel counters (attempts/acks/retries/noop-skips),
/// convergence scalars and the unified metrics snapshot. Shared by
/// examples/cp_chaos_elibrary and the CpChaosDeterminism golden.
PointMetrics cp_point_metrics(const CpChaosExperimentResult& result);

/// The standard metric set for one MTLS experiment arm: per-workload
/// latency scalars, the pre/post-storm phase split, the mesh-wide tls_*
/// counter surface, bottleneck utilization and the unified metrics
/// snapshot. Shared by bench/bench_mtls and the MtlsDeterminism golden
/// so both compare the same surface.
PointMetrics mtls_point_metrics(const MtlsExperimentResult& result);

/// The standard metric set for one PARSIM run: workload scalars/counters
/// (shard- and thread-invariant), the end-to-end latency histogram, the
/// workload metrics snapshot, and the engine surface (events, epochs,
/// messages, merged loop stats — thread-invariant for a fixed shard
/// count). Shared by bench/bench_parsim and the determinism tests so both
/// compare the same surface.
PointMetrics parsim_point_metrics(const ParsimExperimentResult& result);

/// The standard metric set for one MESHSCALE arm: workload counters and
/// the e2e latency histogram, the control-plane push-channel surface
/// (full/delta pushes and bytes, churn-window bytes, reconvergence),
/// per-sidecar endpoint-table sizes, and the engine shape. Shared by
/// bench/bench_meshscale and the determinism checks so both compare the
/// same surface.
PointMetrics meshscale_point_metrics(const MeshscaleExperimentResult& result);

}  // namespace meshnet::workload
