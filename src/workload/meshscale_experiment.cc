#include "workload/meshscale_experiment.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "app/mesh_builder.h"
#include "cluster/topology_gen.h"
#include "mesh/http_client.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace meshnet::workload {

namespace {

// splitmix64 finalizer: app think time is a pure function of
// (seed, cell, service, path), so it cannot depend on processing order.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Four layers in a 1:2:3:4 width ratio (the PARSIM shape, re-based so
/// --services sets the total exactly).
std::vector<int> layer_widths(int services) {
  if (services < 4) {
    return std::vector<int>(static_cast<std::size_t>(std::max(1, services)),
                            1);
  }
  int w0 = std::max(1, services / 10);
  int w1 = std::max(1, services * 2 / 10);
  int w2 = std::max(1, services * 3 / 10);
  int w3 = services - w0 - w1 - w2;
  while (w3 < 1) {
    if (w2 > 1) {
      --w2;
    } else if (w1 > 1) {
      --w1;
    } else {
      --w0;
    }
    ++w3;
  }
  return {w0, w1, w2, w3};
}

mesh::MeshPolicies make_policies(const MeshscaleConfig& config) {
  mesh::MeshPolicies policies;
  policies.retry.max_retries = 1;
  policies.retry.per_try_timeout = sim::milliseconds(250);
  policies.request_timeout = sim::milliseconds(800);
  policies.transport_mss = 8960;
  // A non-trivial push channel: the convergence comparison is only
  // honest when pushes take time and can be lost.
  policies.cp.push_latency_base = sim::milliseconds(2);
  policies.cp.push_latency_jitter = sim::milliseconds(3);
  policies.cp.ack_timeout = sim::milliseconds(200);
  policies.cp.push_loss = 0.01;
  policies.cp.delta_push = config.delta_push;
  policies.subset.enabled = config.subset_size > 0;
  policies.subset.subset_size = config.subset_size;
  return policies;
}

/// One independent mesh replica pinned to one engine shard.
struct Cell {
  int index = 0;
  sim::Simulator* sim = nullptr;
  std::unique_ptr<cluster::BuiltMesh> mesh;
  std::unique_ptr<mesh::HttpClientPool> pool;
  std::unique_ptr<obs::MetricRegistry> registry;

  obs::Counter* generated = nullptr;
  obs::Counter* responses = nullptr;
  obs::Counter* successes = nullptr;
  obs::Counter* failures = nullptr;
  obs::Histogram* latency = nullptr;

  /// Push-channel tallies sampled at the churn instant (before the
  /// deregistration lands), so end-of-run minus this is the churn cost.
  mesh::ControlPlane::PushChannelBytes at_churn;

  struct RootGen {
    std::string host;
    int root_index = 0;
    sim::RngStream rng;
    std::uint64_t next = 0;
    RootGen(std::string host_name, int index, std::uint64_t seed, int cell)
        : host(std::move(host_name)),
          root_index(index),
          rng(seed, "meshscale-arrivals:c" + std::to_string(cell) + ":r" +
                        std::to_string(index)) {}
  };
  std::vector<std::unique_ptr<RootGen>> roots;
};

void issue_request(Cell& cell, Cell::RootGen& root) {
  cell.generated->inc();
  // Fixed-format workload-assigned id: the sidecar's fallback generator
  // (thread_local, and therefore thread-count-dependent) is never hit.
  char id[48];
  std::snprintf(id, sizeof id, "c%02d-r%03d-%010llu", cell.index,
                root.root_index,
                static_cast<unsigned long long>(root.next));
  http::HttpRequest request;
  request.path = "/r/" + root.host + "/" + std::to_string(root.next);
  request.headers.set(http::headers::kHost, root.host);
  request.set_request_id(id);
  ++root.next;

  Cell* cell_ptr = &cell;
  const sim::Time sent = cell.sim->now();
  cell.pool->request(
      std::move(request),
      [cell_ptr, sent](std::optional<http::HttpResponse> response,
                       const std::string&) {
        cell_ptr->responses->inc();
        if (response && response->ok()) {
          cell_ptr->successes->inc();
          cell_ptr->latency->record(static_cast<std::uint64_t>(
              (cell_ptr->sim->now() - sent) / sim::kMicrosecond));
        } else {
          cell_ptr->failures->inc();
        }
      });
}

void schedule_next_arrival(Cell& cell, Cell::RootGen& root, double rps,
                           sim::Time end) {
  const sim::Duration gap = std::max<sim::Duration>(
      1, sim::from_seconds(root.rng.exponential(1.0 / rps)));
  const sim::Time when = cell.sim->now() + gap;
  if (when > end) return;  // arrival window closed; the run then drains
  Cell* cell_ptr = &cell;
  Cell::RootGen* root_ptr = &root;
  cell.sim->schedule_at(when, [cell_ptr, root_ptr, rps, end] {
    issue_request(*cell_ptr, *root_ptr);
    schedule_next_arrival(*cell_ptr, *root_ptr, rps, end);
  });
}

void add(mesh::ControlPlane::PushChannelBytes& into,
         const mesh::ControlPlane::PushChannelBytes& from) {
  into.full_bytes += from.full_bytes;
  into.delta_bytes += from.delta_bytes;
  into.full_pushes += from.full_pushes;
  into.delta_pushes += from.delta_pushes;
  into.delta_fallbacks += from.delta_fallbacks;
}

mesh::ControlPlane::PushChannelBytes sub(
    const mesh::ControlPlane::PushChannelBytes& a,
    const mesh::ControlPlane::PushChannelBytes& b) {
  return {a.full_bytes - b.full_bytes, a.delta_bytes - b.delta_bytes,
          a.full_pushes - b.full_pushes, a.delta_pushes - b.delta_pushes,
          a.delta_fallbacks - b.delta_fallbacks};
}

}  // namespace

MeshscaleExperimentResult run_meshscale_experiment(
    const MeshscaleConfig& config) {
  cluster::FanoutSpec fanout;
  fanout.layer_widths = layer_widths(config.services);
  fanout.fanout = config.fanout;
  const cluster::GenTopology topology =
      cluster::generate_layered_fanout(fanout, config.seed);

  sim::ParallelEngineOptions engine_options;
  engine_options.shards = std::max(1, config.cells);
  // Cells never talk, so any positive lookahead is conservative; 50 ms
  // keeps the barrier count per run in the dozens.
  engine_options.lookahead = sim::milliseconds(50);
  engine_options.threads = config.threads;
  engine_options.respect_worker_budget = config.respect_worker_budget;
  sim::ParallelEngine engine(engine_options);

  cluster::TopologyMeshOptions adapter;
  adapter.replicas = std::max(1, config.replicas);
  // Churn victim: the highest-id leaf somebody actually calls, so the
  // scoped arms measure a churn event with real subscribers (a leaf with
  // no parents would cost a scoped mesh exactly zero pushes).
  int victim_id = topology.service_count() - 1;
  std::vector<int> in_degree(topology.services.size(), 0);
  for (const cluster::GenEdge& edge : topology.edges) {
    ++in_degree[static_cast<std::size_t>(edge.to)];
  }
  for (int id = topology.service_count() - 1; id >= 0; --id) {
    if (topology.services[static_cast<std::size_t>(id)].out_edges.empty() &&
        in_degree[static_cast<std::size_t>(id)] > 0) {
      victim_id = id;
      break;
    }
  }
  const std::string victim_service =
      cluster::topology_service_name(adapter, victim_id);
  const std::string victim_pod =
      victim_service + (adapter.replicas > 1 ? "-v2" : "-v1");

  const sim::Duration compute_span =
      std::max<sim::Duration>(1, config.compute_max - config.compute_min + 1);

  std::vector<std::unique_ptr<Cell>> cells;
  for (int c = 0; c < engine_options.shards; ++c) {
    auto cell = std::make_unique<Cell>();
    cell->index = c;
    cell->sim = &engine.shard(c);
    cell->registry = std::make_unique<obs::MetricRegistry>();
    cell->generated = &cell->registry->counter("meshscale_requests_generated");
    cell->responses = &cell->registry->counter("meshscale_responses");
    cell->successes = &cell->registry->counter("meshscale_successes");
    cell->failures = &cell->registry->counter("meshscale_failures");
    // Microseconds so per-cell double accumulators merge bit-exactly.
    cell->latency = &cell->registry->histogram("meshscale_e2e_latency_us");

    cluster::MeshSpec spec = cluster::mesh_spec_from_topology(topology,
                                                              adapter);
    spec.policies = make_policies(config);
    spec.gateway.enabled = true;
    spec.gateway.pod_name = "gateway";
    spec.gateway.port = 80;
    spec.external_pods.push_back(cluster::ExternalPodSpec{
        "loadgen", "", cluster::PodOptions{40e9, sim::microseconds(50), {}}});

    if (config.derive_scopes) {
      // Explicit scopes rather than derive_cluster_scopes: a leaf that
      // calls nobody gets an EMPTY scope (zero clusters) instead of the
      // legacy see-everything default, and the gateway is scoped to the
      // roots it routes to.
      std::vector<std::string> root_names;
      for (const cluster::GenService& service : topology.services) {
        if (service.layer == 0) {
          root_names.push_back(
              cluster::topology_service_name(adapter, service.id));
        }
      }
      spec.policies.cluster_scopes[spec.gateway.service] = root_names;
      for (const cluster::ServiceSpec& service : spec.services) {
        spec.policies.cluster_scopes[service.name] = service.calls;
      }
    }

    const std::uint64_t cell_seed =
        mix64(config.seed ^ (static_cast<std::uint64_t>(c) << 32));
    for (std::size_t i = 0; i < spec.services.size(); ++i) {
      cluster::ServiceSpec& service = spec.services[i];
      const std::vector<std::string> calls = service.calls;
      const std::uint64_t visit_seed = mix64(cell_seed ^ i);
      const sim::Duration compute_min =
          std::max<sim::Duration>(1, config.compute_min);
      service.handler = [calls, visit_seed, compute_min,
                         compute_span](const http::HttpRequest& request) {
        app::HandlerResult plan;
        plan.processing_delay =
            compute_min +
            static_cast<sim::Duration>(
                mix64(visit_seed ^ fnv1a(request.path)) %
                static_cast<std::uint64_t>(compute_span));
        plan.response_bytes = 256;
        for (const std::string& target : calls) {
          plan.calls.push_back(app::SubCall{target, request.path});
        }
        return plan;
      };
    }

    cluster::MeshBuilder builder(*cell->sim);
    std::string error;
    cell->mesh = builder.build(std::move(spec), &error);
    if (cell->mesh == nullptr) {
      std::fprintf(stderr, "meshscale: invalid generated spec: %s\n",
                   error.c_str());
      std::abort();
    }
    cell->mesh->control_plane().tracer().set_retention(0);

    mesh::HttpClientPool::Options pool_options;
    pool_options.max_connections = 256;
    cell->pool = std::make_unique<mesh::HttpClientPool>(
        *cell->sim, cell->mesh->pod("loadgen")->transport(),
        cell->mesh->gateway_address(), pool_options,
        "loadgen:c" + std::to_string(c));

    int root_index = 0;
    for (const cluster::GenService& service : topology.services) {
      if (service.layer != 0) continue;
      cell->roots.push_back(std::make_unique<Cell::RootGen>(
          cluster::topology_service_name(adapter, service.id), root_index,
          config.seed, c));
      ++root_index;
    }
    cells.push_back(std::move(cell));
  }

  for (auto& cell : cells) {
    for (auto& root : cell->roots) {
      schedule_next_arrival(*cell, *root, config.root_rps, config.duration);
    }
    if (config.churn) {
      Cell* cell_ptr = cell.get();
      cell->sim->schedule_at(config.churn_at, [cell_ptr, victim_pod] {
        // Sample the channel first: everything after this instant is the
        // marginal cost of one endpoint flapping.
        cell_ptr->at_churn =
            cell_ptr->mesh->control_plane().push_channel_bytes();
        cell_ptr->mesh->cluster().crash_pod(victim_pod);
        cell_ptr->mesh->cluster().deregister_pod(victim_pod);
      });
      cell->sim->schedule_at(config.restore_at, [cell_ptr, victim_pod] {
        cell_ptr->mesh->cluster().restart_pod(victim_pod);
      });
    }
  }

  engine.run_until(config.duration + config.drain);

  obs::MetricRegistry merged;
  for (const auto& cell : cells) merged.merge(*cell->registry);

  MeshscaleExperimentResult result;
  result.metrics = merged.snapshot();
  if (const obs::Counter* c =
          merged.find_counter("meshscale_requests_generated")) {
    result.requests_generated = c->value();
  }
  if (const obs::Counter* c = merged.find_counter("meshscale_responses")) {
    result.responses = c->value();
  }
  if (const obs::Counter* c = merged.find_counter("meshscale_successes")) {
    result.successes = c->value();
  }
  if (const obs::Counter* c = merged.find_counter("meshscale_failures")) {
    result.failures = c->value();
  }
  if (const obs::Histogram* h =
          merged.find_histogram("meshscale_e2e_latency_us")) {
    result.e2e_latency = h->data();
  }

  result.converged = true;
  for (const auto& cell : cells) {
    mesh::ControlPlane& cp = cell->mesh->control_plane();
    const mesh::ControlPlane::PushChannelBytes end = cp.push_channel_bytes();
    add(result.bytes, end);
    if (config.churn) add(result.churn_bytes, sub(end, cell->at_churn));
    result.epochs += cp.epoch();
    result.cp_pushes += cp.pushes();
    if (!cp.converged()) result.converged = false;
    if (config.churn) {
      const sim::Time converged_at = cp.last_converged_at();
      if (converged_at >= config.restore_at) {
        result.churn_convergence = std::max(
            result.churn_convergence, converged_at - config.restore_at);
      } else {
        result.converged = false;  // never reconverged after the restore
      }
    }
    for (const auto& sidecar : cp.sidecars()) {
      std::uint64_t entries = 0;
      for (const auto& [name, spec] : sidecar->config().clusters) {
        entries += spec.endpoints.size();
      }
      result.endpoint_entries += entries;
      result.max_endpoints_per_sidecar =
          std::max(result.max_endpoints_per_sidecar, entries);
      ++result.sidecars;
    }
  }

  result.services = topology.service_count();
  result.cells = engine_options.shards;
  result.executors = engine.executor_count();
  result.events_executed = engine.events_executed();
  result.engine = engine.stats();
  return result;
}

}  // namespace meshnet::workload
