#include "workload/elibrary_experiment.h"

#include <memory>

#include "obs/engine_metrics.h"
#include "sim/simulator.h"

namespace meshnet::workload {

core::CrossLayerConfig
ElibraryExperimentConfig::default_cross_layer_config() {
  core::CrossLayerConfig config;
  config.classifier.rules = {
      core::ClassificationRule{std::string(app::Elibrary::kLsPathPrefix),
                               "", "", "",
                               mesh::TrafficClass::kLatencySensitive},
      core::ClassificationRule{std::string(app::Elibrary::kLiPathPrefix),
                               "", "", "",
                               mesh::TrafficClass::kScavenger},
  };
  config.classifier.default_class = mesh::TrafficClass::kLatencySensitive;
  config.priority_routed_clusters = {"reviews"};
  return config;
}

ElibraryExperimentResult run_elibrary_experiment(
    const ElibraryExperimentConfig& config) {
  http::reset_request_id_counter();
  sim::Simulator sim;
  app::Elibrary app(sim, config.app);
  // Spans are a per-request memory cost; retain none during load runs.
  app.control_plane().tracer().set_retention(0);

  std::unique_ptr<core::CrossLayerController> cross_layer;
  if (config.cross_layer) {
    cross_layer = std::make_unique<core::CrossLayerController>(
        app.control_plane(), app.cluster(), config.cross_layer_config);
    cross_layer->install();
    if (config.sdn_out_of_band) {
      cross_layer->sdn().program_link(app.bottleneck_link(),
                                      config.cross_layer_config.high_share);
    }
  }

  // The external client (wrk2's stand-in) connects straight to the
  // gateway with a generously sized pool so the client itself never
  // bottlenecks the open loop.
  mesh::HttpClientPool::Options client_options;
  client_options.max_connections = 2048;
  client_options.connection.mss = config.app.policies.transport_mss;
  mesh::HttpClientPool client(sim, app.client_pod().transport(),
                              app.gateway_address(), client_options,
                              "wrk2-client");

  const sim::Time measure_start = config.warmup;
  const sim::Time measure_end = config.warmup + config.duration;
  const sim::Time traffic_end = measure_end + config.cooldown;

  WorkloadSpec ls;
  ls.name = "latency-sensitive";
  ls.rps = config.ls_rps;
  ls.arrival = config.arrival;
  ls.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLsPathPrefix));
  ls.start = 0;
  ls.end = traffic_end;
  ls.measure_start = measure_start;
  ls.measure_end = measure_end;

  WorkloadSpec li = ls;
  li.name = "latency-insensitive";
  li.rps = config.li_rps;
  li.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLiPathPrefix));

  OpenLoopGenerator ls_gen(sim, client, ls, config.seed);
  OpenLoopGenerator li_gen(sim, client, li, config.seed + 1);
  ls_gen.start();
  li_gen.start();

  // Snapshot the bottleneck's busy time at the measurement boundaries so
  // utilization reflects the measured window, not the drain period.
  sim::Duration busy_at_start = 0;
  sim::Duration busy_at_end = 0;
  sim.schedule_at(measure_start, [&] {
    busy_at_start = app.bottleneck_link().stats().busy_time;
  });
  sim.schedule_at(measure_end, [&] {
    busy_at_end = app.bottleneck_link().stats().busy_time;
  });

  // Run past the last arrival so in-flight responses drain.
  sim.run_until(traffic_end + sim::seconds(30));

  auto summarize = [](const OpenLoopGenerator& gen) {
    WorkloadSummary s;
    const LatencyRecorder& rec = gen.recorder();
    s.completed = rec.count();
    s.errors = rec.errors();
    s.achieved_rps = rec.throughput_rps();
    s.p50_ms = rec.p50_ms();
    s.p90_ms = rec.p90_ms();
    s.p99_ms = rec.p99_ms();
    s.mean_ms = rec.mean_ms();
    return s;
  };

  ElibraryExperimentResult result;
  result.ls = summarize(ls_gen);
  result.li = summarize(li_gen);
  result.ls_latency = ls_gen.recorder().histogram();
  result.li_latency = li_gen.recorder().histogram();

  net::Link& bottleneck = app.bottleneck_link();
  result.bottleneck_utilization =
      static_cast<double>(busy_at_end - busy_at_start) /
      static_cast<double>(measure_end - measure_start);
  result.bottleneck_drops = bottleneck.qdisc().stats().dropped_packets;
  if (const auto* wp = dynamic_cast<const net::WeightedPrioQdisc*>(
          &bottleneck.qdisc())) {
    result.high_band_bytes = wp->band_dequeued_bytes(0);
    result.low_band_bytes = wp->band_dequeued_bytes(1);
  }
  result.events_executed = sim.events_executed();
  result.loop_stats = sim.loop_stats();
  result.spans_recorded = app.control_plane().tracer().span_count();
  obs::export_loop_stats(result.loop_stats, app.control_plane().metrics());
  result.metrics = app.control_plane().metrics().snapshot();
  return result;
}

}  // namespace meshnet::workload
