#pragma once

// The PARSIM experiment: a generated layered fan-out mesh driven through
// the sharded parallel engine (sim/parallel.h).
//
// Purpose is twofold. As a benchmark, it is the engine's speedup case:
// one simulated run partitioned across S shards and executed on 1..N
// worker threads, where the workload metrics — and, for a fixed shard
// count, the engine metrics too — must stay bit-identical at every
// thread count while wall-clock drops. As a correctness harness, it is
// built so that the *workload-visible* results are also independent of
// the shard count itself, which gives the property tests a single-shard
// reference to diff an 8-shard run against.
//
// Shard-count invariance is earned, not assumed. Three rules make it
// hold:
//   * every delay in the system is strictly positive (edge latency,
//     serialization, compute), so no two causally-ordered events share a
//     timestamp;
//   * each service ingests same-timestamp arrivals canonically: arrivals
//     buffer, a drain runs at the same timestamp after all of them (it
//     is scheduled later so its seq is higher), and the batch is sorted
//     by (request id, source service) before queueing — the FIFO's
//     contents never depend on delivery order;
//   * per-request compute times are a hash of (service, request), not a
//     draw from a shared stream, so they are order-independent.
//
// Engine counters (events, epochs, loop stats) DO depend on the shard
// count; they are reported next to the workload metrics but the
// shard-invariance property excludes them.

#include <cstdint>

#include "cluster/topology_gen.h"
#include "obs/metric_registry.h"
#include "sim/loop_stats.h"
#include "sim/parallel.h"
#include "sim/time.h"
#include "stats/histogram.h"

namespace meshnet::workload {

struct ParsimConfig {
  /// The generated service DAG (default: 4+8+16+36 = 64 services).
  cluster::FanoutSpec topology = default_topology();

  int shards = 8;    ///< partition size; workload metrics don't depend on it
  int threads = 1;   ///< engine worker threads (0 = hardware concurrency)
  /// Benchmarks measuring N-thread wall clock run as the top-level
  /// consumer and opt out of the shared worker budget.
  bool respect_worker_budget = true;

  std::uint64_t seed = 42;
  sim::Duration duration = sim::seconds(5);  ///< arrival window; the run
                                             ///< then drains in-flight work

  /// Poisson arrival rate per root service. The default keeps leaf
  /// utilization ~25% (stable, drains fast) while giving each shard a few
  /// hundred events per barrier epoch — enough work to amortize the
  /// barrier on multi-core hosts.
  double root_rps = 400.0;

  /// Per-visit compute window: the deterministic hash of (service,
  /// request) maps into [compute_min, compute_max].
  sim::Duration compute_min = sim::microseconds(200);
  sim::Duration compute_max = sim::microseconds(800);

  std::uint32_t request_bytes = 2048;  ///< on-wire size per edge crossing

  static cluster::FanoutSpec default_topology();
};

struct ParsimExperimentResult {
  // Workload surface — invariant across shard AND thread counts.
  std::uint64_t requests_generated = 0;
  std::uint64_t leaf_completions = 0;
  std::uint64_t service_visits = 0;
  /// Root arrival -> leaf completion, in MICROSECONDS (us-scale values
  /// keep the histogram's double accumulators exact, which is what makes
  /// shard-count invariance bit-exact; see parsim_experiment.cc).
  stats::LogHistogram e2e_latency{7};
  obs::MetricsSnapshot metrics;        ///< workload series only

  // Partition/engine shape (fixed by config, deterministic).
  int shards = 1;
  int executors = 1;
  int services = 0;
  int edges = 0;
  int cut_edges = 0;
  sim::Duration lookahead = 0;

  // Engine surface — invariant across thread counts for a fixed shard
  // count, but NOT across shard counts.
  std::uint64_t events_executed = 0;
  sim::LoopStats loop_stats;        ///< merged across shards
  sim::ParallelEngineStats engine;  ///< epochs / messages / overflows
};

ParsimExperimentResult run_parsim_experiment(const ParsimConfig& config);

}  // namespace meshnet::workload
