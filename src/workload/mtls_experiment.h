#pragma once

// The MTLS experiment: the mTLS datapath's cost on the e-library, with a
// handshake-storm arm where session resumption is the measured
// mitigation.
//
// The LS/LI workload mix runs through the gateway with the mesh-wide
// mTLS default on or off (the external client always speaks plaintext;
// the gateway's permissive inbound listener sniffs it through). With
// mTLS on, every in-mesh hop pays the crypto cost model of
// mesh/tls_session.h: handshake RTTs + asymmetric CPU on connection
// establishment, per-record AEAD on every byte after. Steady-state arms
// measure the plaintext vs mTLS p50/p99 overhead and goodput at the
// reviews->ratings bottleneck; a per-hop arm turns mTLS on for a single
// service (the per-service override knob) to isolate one hop's share.
//
// The storm arm mass-restarts every service pod mid-window
// (ChaosController), severing all in-mesh connections at once: the
// reconnect wave forces handshakes mesh-wide. With resumption on, the
// clients' cached tickets (still valid — the pod restart does not rotate
// the service certificate) turn that wave into cheap resumed handshakes;
// with it off every reconnect pays the full asymmetric cost. The
// post-storm phase p99 difference between those two arms is session
// resumption's value.
//
// Determinism: the whole run is a function of the config (seed
// included); results are bit-identical across --threads values.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "app/elibrary.h"
#include "faults/chaos.h"
#include "mesh/telemetry.h"
#include "workload/chaos_experiment.h"
#include "workload/elibrary_experiment.h"
#include "workload/generator.h"

namespace meshnet::workload {

struct MtlsExperimentConfig {
  double ls_rps = 30.0;
  double li_rps = 10.0;

  sim::Duration warmup = sim::seconds(4);
  sim::Duration duration = sim::seconds(30);  ///< measured window
  sim::Duration cooldown = sim::seconds(4);
  std::uint64_t seed = 42;
  ArrivalProcess arrival = ArrivalProcess::kUniformRandom;

  /// The arm switches: mesh-wide mTLS default, per-service exceptions
  /// (compiled into MeshPolicies::mtls_overrides; entries win over the
  /// default), and session-ticket resumption.
  bool mtls = true;
  std::map<std::string, bool> mtls_overrides;
  bool session_resumption = true;

  /// Handshake storm: every service pod crashes at `storm_offset`
  /// (relative to the start of the measured window) and restarts
  /// `storm_restart_delay` later. All in-mesh connections die; the
  /// reconnect wave is the measured event.
  bool storm = false;
  sim::Duration storm_offset = sim::seconds(15);
  sim::Duration storm_restart_delay = sim::milliseconds(200);

  /// End-to-end deadline at every sidecar (same rationale as CHAOS: a
  /// request stranded by the storm must fail at the deadline, not ride
  /// it out).
  sim::Duration request_timeout = sim::milliseconds(2500);

  app::ElibraryOptions app;
};

struct MtlsExperimentResult {
  WorkloadSummary ls;  ///< whole measured window
  WorkloadSummary li;

  /// LS workload bucketed around the storm instant (pre = measure start
  /// .. storm, post = storm .. measure end), keyed by scheduled arrival
  /// time. Meaningful for storm arms; still deterministic without one.
  PhaseSummary pre;
  PhaseSummary post;

  double bottleneck_utilization = 0.0;
  std::uint64_t bottleneck_drops = 0;

  // Mesh-wide TLS counters (mirrors of the tls_* registry series).
  std::uint64_t handshakes_full = 0;
  std::uint64_t handshakes_resumed = 0;
  std::uint64_t handshake_failures = 0;
  std::uint64_t tickets_issued = 0;
  std::uint64_t resumptions_rejected = 0;
  std::uint64_t session_cache_evictions = 0;
  std::uint64_t records_encrypted = 0;
  std::uint64_t records_decrypted = 0;
  std::uint64_t bytes_encrypted = 0;
  std::uint64_t bytes_decrypted = 0;
  std::uint64_t tls_alerts = 0;
  std::uint64_t cert_rotations = 0;

  std::uint64_t upstream_retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t upstream_failures = 0;
  std::uint64_t downstream_aborts = 0;

  /// Determinism witnesses: identical across runs with the same config.
  std::vector<faults::FaultLogEntry> fault_log;
  std::uint64_t events_executed = 0;
  sim::LoopStats loop_stats;
  obs::MetricsSnapshot metrics;
};

MtlsExperimentResult run_mtls_experiment(const MtlsExperimentConfig& config);

/// The acceptance table: steady-state plaintext vs mTLS latency/goodput
/// and the storm arms' post-restart recovery, full vs resumed.
std::string format_mtls_comparison(const MtlsExperimentResult& plaintext,
                                   const MtlsExperimentResult& mtls_full,
                                   const MtlsExperimentResult& mtls_resume,
                                   const MtlsExperimentResult& storm_full,
                                   const MtlsExperimentResult& storm_resume);

}  // namespace meshnet::workload
