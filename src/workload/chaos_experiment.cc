#include "workload/chaos_experiment.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>

#include "obs/engine_metrics.h"
#include "sim/simulator.h"

namespace meshnet::workload {

namespace {

void apply_resilience_policies(mesh::MeshPolicies& policies, bool on) {
  if (on) {
    policies.retry.max_retries = 3;
    policies.retry.per_try_timeout = sim::milliseconds(500);
    policies.retry.backoff_jitter = true;
    policies.retry.backoff_max = sim::milliseconds(250);
    // Budget sized so crash-recovery retries (a burst, but a small
    // fraction of in-flight) are admitted while a retry storm is not.
    policies.retry.retry_budget = 0.2;
    policies.retry.retry_budget_min_concurrency = 10;
    policies.breaker.consecutive_failures = 5;
    policies.breaker.open_duration = sim::milliseconds(500);
    policies.health_check.enabled = true;
    policies.health_check.interval = sim::milliseconds(250);
    policies.health_check.timeout = sim::milliseconds(200);
    policies.health_check.unhealthy_threshold = 2;
    policies.health_check.healthy_threshold = 2;
  } else {
    policies.retry.max_retries = 0;
    policies.retry.per_try_timeout = 0;
    policies.breaker.consecutive_failures = 0;  // disabled
    policies.health_check.enabled = false;
  }
}

PhaseSummary summarize_phase(std::string name, const LatencyRecorder& rec,
                             std::uint64_t scheduled) {
  PhaseSummary s;
  s.name = std::move(name);
  s.scheduled = scheduled;
  s.completed = rec.count();
  s.errors = rec.errors();
  const std::uint64_t finished = s.completed + s.errors;
  s.success_rate = finished == 0
                       ? 1.0
                       : static_cast<double>(s.completed) /
                             static_cast<double>(finished);
  s.goodput_rps = rec.throughput_rps();
  s.p50_ms = rec.p50_ms();
  s.p99_ms = rec.p99_ms();
  return s;
}

}  // namespace

ChaosExperimentResult run_chaos_elibrary_experiment(
    const ChaosExperimentConfig& config) {
  http::reset_request_id_counter();
  sim::Simulator sim;

  app::ElibraryOptions app_options = config.app;
  apply_resilience_policies(app_options.policies, config.resilience);
  app_options.policies.request_timeout = config.request_timeout;

  app::Elibrary app(sim, app_options);
  app.control_plane().tracer().set_retention(0);

  const sim::Time measure_start = config.warmup;
  const sim::Time measure_end = config.warmup + config.duration;
  const sim::Time traffic_end = measure_end + config.cooldown;
  const sim::Time fault_start = measure_start + config.fault_start_offset;
  const sim::Time fault_end = fault_start + config.fault_duration;

  // --- the chaos schedule -------------------------------------------------
  faults::ChaosController chaos(sim, app.cluster(), config.seed);
  chaos.set_fault_hook([&](const faults::FaultLogEntry& entry) {
    app.control_plane().telemetry().record_event(
        entry.at, obs::EventKind::kFault, entry.target,
        std::string(faults::fault_action_name(entry.action)));
  });
  faults::FaultPlan plan;
  if (config.crash_reviews_replica) {
    plan.crash(fault_start, config.crash_target);
    plan.restart(fault_end, config.crash_target);
  }
  if (config.flap_bottleneck) {
    plan.flap(fault_start + config.flap_period / 2, fault_end,
              config.flap_target, config.flap_period, config.flap_downtime);
  }
  chaos.schedule(plan);

  // --- load --------------------------------------------------------------
  mesh::HttpClientPool::Options client_options;
  client_options.max_connections = 2048;
  client_options.connection.mss = app_options.policies.transport_mss;
  mesh::HttpClientPool client(sim, app.client_pod().transport(),
                              app.gateway_address(), client_options,
                              "wrk2-client");

  WorkloadSpec ls;
  ls.name = "latency-sensitive";
  ls.rps = config.ls_rps;
  ls.arrival = config.arrival;
  ls.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLsPathPrefix));
  ls.start = 0;
  ls.end = traffic_end;
  ls.measure_start = measure_start;
  ls.measure_end = measure_end;

  WorkloadSpec li = ls;
  li.name = "latency-insensitive";
  li.rps = config.li_rps;
  li.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLiPathPrefix));

  OpenLoopGenerator ls_gen(sim, client, ls, config.seed);
  OpenLoopGenerator li_gen(sim, client, li, config.seed + 1);

  // Phase bucketing for the LS workload, keyed on scheduled arrival time.
  LatencyRecorder before_rec(measure_start, fault_start);
  LatencyRecorder during_rec(fault_start, fault_end);
  LatencyRecorder after_rec(fault_end, measure_end);
  std::array<std::uint64_t, 3> scheduled_per_phase{};
  ls_gen.set_arrival_observer([&](sim::Time scheduled) {
    if (scheduled >= measure_start && scheduled < fault_start) {
      ++scheduled_per_phase[0];
    } else if (scheduled >= fault_start && scheduled < fault_end) {
      ++scheduled_per_phase[1];
    } else if (scheduled >= fault_end && scheduled < measure_end) {
      ++scheduled_per_phase[2];
    }
  });
  ls_gen.set_sample_observer(
      [&](sim::Time scheduled, sim::Time completed, bool success) {
        before_rec.record(scheduled, completed, success);
        during_rec.record(scheduled, completed, success);
        after_rec.record(scheduled, completed, success);
      });

  ls_gen.start();
  li_gen.start();

  // Drain long enough for every request — including ones pinned to the
  // end-to-end deadline in the baseline arm — to resolve.
  sim.run_until(traffic_end + 2 * config.request_timeout +
                sim::seconds(10));

  auto summarize = [](const OpenLoopGenerator& gen) {
    WorkloadSummary s;
    const LatencyRecorder& rec = gen.recorder();
    s.completed = rec.count();
    s.errors = rec.errors();
    s.achieved_rps = rec.throughput_rps();
    s.p50_ms = rec.p50_ms();
    s.p90_ms = rec.p90_ms();
    s.p99_ms = rec.p99_ms();
    s.mean_ms = rec.mean_ms();
    return s;
  };

  ChaosExperimentResult result;
  result.before = summarize_phase("before", before_rec, scheduled_per_phase[0]);
  result.during = summarize_phase("during", during_rec, scheduled_per_phase[1]);
  result.after = summarize_phase("after", after_rec, scheduled_per_phase[2]);
  result.ls = summarize(ls_gen);
  result.li = summarize(li_gen);

  mesh::TelemetrySink& telemetry = app.control_plane().telemetry();
  result.breaker_events = telemetry.event_count(obs::EventKind::kBreaker);
  result.health_events = telemetry.event_count(obs::EventKind::kHealth);
  for (const mesh::MeshEvent& event : telemetry.events()) {
    if (event.kind == obs::EventKind::kHealth) {
      if (event.detail == "evicted") ++result.health_evictions;
      if (event.detail == "readmitted") ++result.health_readmissions;
    }
  }
  for (const auto& sidecar : app.control_plane().sidecars()) {
    result.retries_denied_by_budget +=
        sidecar->stats().retries_denied_by_budget;
    result.upstream_retries += sidecar->stats().upstream_retries;
  }
  result.fault_log = chaos.log();
  result.mesh_events = telemetry.events();
  result.events_executed = sim.events_executed();
  result.loop_stats = sim.loop_stats();
  obs::export_loop_stats(result.loop_stats, app.control_plane().metrics());
  result.metrics = app.control_plane().metrics().snapshot();
  return result;
}

std::string format_chaos_comparison(const ChaosExperimentResult& resilient,
                                    const ChaosExperimentResult& baseline) {
  std::string out;
  char line[256];
  auto row = [&](const char* arm, const PhaseSummary& p) {
    std::snprintf(line, sizeof(line),
                  "  %-9s %-7s %8.1f %9.2f%% %9.1f %9.1f\n", arm,
                  p.name.c_str(), p.goodput_rps, 100.0 * p.success_rate,
                  p.p50_ms, p.p99_ms);
    out += line;
  };
  out += "LS workload by phase (fault window = 'during'):\n";
  std::snprintf(line, sizeof(line), "  %-9s %-7s %8s %10s %9s %9s\n", "arm",
                "phase", "goodput", "success", "p50ms", "p99ms");
  out += line;
  for (const PhaseSummary* p :
       {&resilient.before, &resilient.during, &resilient.after}) {
    row("resilient", *p);
  }
  for (const PhaseSummary* p :
       {&baseline.before, &baseline.during, &baseline.after}) {
    row("baseline", *p);
  }
  std::snprintf(
      line, sizeof(line),
      "resilient: %llu evictions, %llu readmissions, %llu breaker events, "
      "%llu retries (%llu denied by budget)\n",
      static_cast<unsigned long long>(resilient.health_evictions),
      static_cast<unsigned long long>(resilient.health_readmissions),
      static_cast<unsigned long long>(resilient.breaker_events),
      static_cast<unsigned long long>(resilient.upstream_retries),
      static_cast<unsigned long long>(resilient.retries_denied_by_budget));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "baseline:  %llu evictions, %llu readmissions, %llu breaker events, "
      "%llu retries (%llu denied by budget)\n",
      static_cast<unsigned long long>(baseline.health_evictions),
      static_cast<unsigned long long>(baseline.health_readmissions),
      static_cast<unsigned long long>(baseline.breaker_events),
      static_cast<unsigned long long>(baseline.upstream_retries),
      static_cast<unsigned long long>(baseline.retries_denied_by_budget));
  out += line;
  return out;
}

}  // namespace meshnet::workload
