#pragma once

// The chaos variant of the e-library experiment: the LS/LI workload mix
// runs while a FaultPlan kills one reviews replica and flaps the
// reviews->ratings bottleneck vNIC. LS goodput and latency are reported
// for three phases — before, during and after the fault window — so the
// resilience machinery's value shows up as "the during column barely
// moves" with health checking + breakers + retry budgets on, and as a
// goodput collapse with them off.
//
// Determinism: the whole run is a function of the config (seed included).
// Same seed => identical fault log and mesh event log, which is what
// makes a chaos result debuggable and regression-testable.

#include <cstdint>
#include <string>
#include <vector>

#include "app/elibrary.h"
#include "faults/chaos.h"
#include "mesh/telemetry.h"
#include "workload/elibrary_experiment.h"
#include "workload/generator.h"

namespace meshnet::workload {

struct ChaosExperimentConfig {
  double ls_rps = 30.0;
  double li_rps = 10.0;

  sim::Duration warmup = sim::seconds(4);
  sim::Duration duration = sim::seconds(24);  ///< measured window
  sim::Duration cooldown = sim::seconds(4);
  std::uint64_t seed = 42;
  ArrivalProcess arrival = ArrivalProcess::kUniformRandom;

  /// With resilience on, the mesh gets active health checking, circuit
  /// breakers, per-try timeouts and budgeted retries; with it off, all of
  /// those are disabled (max_retries = 0) — the "mesh as dumb pipe" arm.
  bool resilience = true;

  /// Fault window, relative to the start of the measured window.
  sim::Duration fault_start_offset = sim::seconds(6);
  sim::Duration fault_duration = sim::seconds(10);

  /// Kill one reviews replica for the fault window (crash at start,
  /// restart at end; the registry is never told — detection is active
  /// health checking's job).
  bool crash_reviews_replica = true;
  std::string crash_target = "reviews-v1";

  /// Flap the bottleneck (ratings vNIC): down `flap_downtime` out of
  /// every `flap_period` during the fault window.
  bool flap_bottleneck = true;
  std::string flap_target = "ratings-v1";
  sim::Duration flap_period = sim::seconds(2);
  sim::Duration flap_downtime = sim::milliseconds(40);

  /// End-to-end deadline at every sidecar. Deliberately shorter than the
  /// fault window: requests the baseline arm parks on a crashed replica
  /// must *fail* at the deadline, not ride it out until the restart.
  sim::Duration request_timeout = sim::milliseconds(2500);

  app::ElibraryOptions app;
};

/// LS-workload metrics over one phase of the run. Samples are bucketed by
/// *scheduled* arrival time (wrk2 convention), so a request that arrived
/// during the fault but straggled in later still charges the fault phase.
struct PhaseSummary {
  std::string name;
  std::uint64_t scheduled = 0;  ///< arrivals whose intended time is in-phase
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  double success_rate = 1.0;  ///< completed / (completed + errors)
  double goodput_rps = 0.0;   ///< successful completions / phase length
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct ChaosExperimentResult {
  PhaseSummary before;
  PhaseSummary during;
  PhaseSummary after;

  WorkloadSummary ls;  ///< whole measured window
  WorkloadSummary li;

  std::uint64_t breaker_events = 0;  ///< breaker state transitions
  std::uint64_t health_events = 0;   ///< evictions + readmissions
  std::uint64_t health_evictions = 0;
  std::uint64_t health_readmissions = 0;
  std::uint64_t retries_denied_by_budget = 0;
  std::uint64_t upstream_retries = 0;

  /// Determinism witnesses: identical across runs with the same config.
  std::vector<faults::FaultLogEntry> fault_log;
  std::vector<mesh::MeshEvent> mesh_events;
  std::uint64_t events_executed = 0;
  /// Event-loop profile for the run (deterministic; see sim/loop_stats.h).
  sim::LoopStats loop_stats;
  /// The unified meshnet-metrics-v1 snapshot for the run.
  obs::MetricsSnapshot metrics;
};

ChaosExperimentResult run_chaos_elibrary_experiment(
    const ChaosExperimentConfig& config);

/// The acceptance table: per-phase LS goodput/success/p99 for the
/// resilient and baseline arms, plus the resilience counters.
std::string format_chaos_comparison(const ChaosExperimentResult& resilient,
                                    const ChaosExperimentResult& baseline);

}  // namespace meshnet::workload
