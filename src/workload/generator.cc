#include "workload/generator.h"

#include <utility>

namespace meshnet::workload {

OpenLoopGenerator::OpenLoopGenerator(sim::Simulator& sim,
                                     mesh::HttpClientPool& client,
                                     WorkloadSpec spec, std::uint64_t seed)
    : sim_(sim),
      client_(client),
      spec_(std::move(spec)),
      rng_(seed, "gen:" + spec_.name),
      recorder_(spec_.measure_start, spec_.measure_end) {}

sim::Duration OpenLoopGenerator::next_gap() {
  const double mean_s = 1.0 / spec_.rps;
  switch (spec_.arrival) {
    case ArrivalProcess::kUniformRandom:
      return sim::from_seconds(rng_.uniform(0.0, 2.0 * mean_s));
    case ArrivalProcess::kPoisson:
      return sim::from_seconds(rng_.exponential(mean_s));
    case ArrivalProcess::kConstant:
      return sim::from_seconds(mean_s);
  }
  return sim::from_seconds(mean_s);
}

void OpenLoopGenerator::start() {
  const sim::Time first = spec_.start + next_gap();
  sim_.schedule_at(first, [this, first] { arrive(first); });
}

void OpenLoopGenerator::arrive(sim::Time scheduled) {
  // Open loop: the next arrival is scheduled before this request's fate
  // is known.
  const sim::Time next = sim_.now() + next_gap();
  if (next < spec_.end) {
    sim_.schedule_at(next, [this, next] { arrive(next); });
  }

  http::HttpRequest request = spec_.make_request(seq_++);
  ++sent_;
  if (arrival_observer_) arrival_observer_(scheduled);
  client_.request(std::move(request),
                  [this, scheduled](std::optional<http::HttpResponse> response,
                                    const std::string& /*error*/) {
                    const bool success = response && response->ok();
                    if (success) {
                      ++completed_;
                    } else {
                      ++failed_;
                    }
                    recorder_.record(scheduled, sim_.now(), success);
                    if (sample_observer_) {
                      sample_observer_(scheduled, sim_.now(), success);
                    }
                  });
}

ClosedLoopGenerator::ClosedLoopGenerator(sim::Simulator& sim,
                                         mesh::HttpClientPool& client,
                                         WorkloadSpec spec, int concurrency)
    : sim_(sim),
      client_(client),
      spec_(std::move(spec)),
      concurrency_(concurrency),
      recorder_(spec_.measure_start, spec_.measure_end) {}

void ClosedLoopGenerator::start() {
  for (int i = 0; i < concurrency_; ++i) issue_one();
}

void ClosedLoopGenerator::issue_one() {
  if (sim_.now() >= spec_.end) return;
  const sim::Time issued = sim_.now();
  http::HttpRequest request = spec_.make_request(seq_++);
  client_.request(std::move(request),
                  [this, issued](std::optional<http::HttpResponse> response,
                                 const std::string& /*error*/) {
                    const bool success = response && response->ok();
                    if (success) {
                      ++completed_;
                    } else {
                      ++failed_;
                    }
                    recorder_.record(issued, sim_.now(), success);
                    issue_one();
                  });
}

std::function<http::HttpRequest(std::uint64_t)> simple_get_factory(
    std::string host, std::string path_prefix, std::uint64_t modulo) {
  return [host = std::move(host), path_prefix = std::move(path_prefix),
          modulo](std::uint64_t i) {
    http::HttpRequest request;
    request.method = "GET";
    request.path = path_prefix + "/" + std::to_string(i % modulo);
    request.headers.set(http::headers::Id::kHost, host);
    return request;
  };
}

}  // namespace meshnet::workload
