#include "mesh/sidecar.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace meshnet::mesh {

Sidecar::Sidecar(sim::Simulator& sim, cluster::Pod& pod, Tracer& tracer,
                 TelemetrySink* telemetry, SidecarConfig config)
    : sim_(sim),
      pod_(pod),
      tracer_(tracer),
      telemetry_(telemetry),
      config_(std::move(config)),
      overhead_rng_(0x5ecda, "sidecar:" + pod.name()) {}

sim::Duration Sidecar::proxy_delay() {
  sim::Duration delay = config_.proxy_overhead_base;
  if (config_.proxy_overhead_jitter > 0) {
    delay += sim::from_seconds(overhead_rng_.exponential(
        sim::to_seconds(config_.proxy_overhead_jitter)));
  }
  return delay;
}

Sidecar::~Sidecar() = default;

void Sidecar::start() {
  if (started_) return;
  started_ = true;
  transport::TransportHost& host = pod_.transport();
  if (!config_.gateway_mode && config_.app_port != 0) {
    host.listen(config_.inbound_port, [this](transport::Connection& conn) {
      accept_session(conn, FilterDirection::kInbound);
    });
    HttpClientPool::Options app_options;
    // Sidecar <-> app rides the pod-local loopback (64 KB MTU).
    app_options.connection.mss = 65496;
    app_options.max_connections = config_.max_pool_connections;
    app_pool_ = std::make_unique<HttpClientPool>(
        sim_, host, net::SocketAddress{pod_.ip(), config_.app_port},
        app_options, config_.service_name + ":app");
  }
  host.listen(config_.outbound_port, [this](transport::Connection& conn) {
    accept_session(conn, FilterDirection::kOutbound);
  });
}

void Sidecar::apply_config(SidecarConfig config) {
  // Identity and listener ports are immutable post-start.
  config.service_name = config_.service_name;
  config.app_port = config_.app_port;
  config.inbound_port = config_.inbound_port;
  config.outbound_port = config_.outbound_port;
  config.gateway_mode = config_.gateway_mode;
  config_ = std::move(config);
  // Balancers are rebuilt lazily so a changed LB policy takes effect.
  balancers_.clear();
}

std::uint64_t Sidecar::active_requests_to(const std::string& pod_name) const {
  const auto it = active_per_endpoint_.find(pod_name);
  return it == active_per_endpoint_.end() ? 0 : it->second;
}

CircuitBreaker& Sidecar::breaker_for(const std::string& cluster_name,
                                     const std::string& pod_name) {
  const std::string key = cluster_name + "/" + pod_name;
  const auto it = breakers_.find(key);
  if (it != breakers_.end()) return it->second;
  const auto spec_it = config_.clusters.find(cluster_name);
  CircuitBreakerConfig cfg =
      spec_it == config_.clusters.end() ? CircuitBreakerConfig{}
                                        : spec_it->second.breaker;
  return breakers_.emplace(key, CircuitBreaker(cfg)).first->second;
}

void Sidecar::accept_session(transport::Connection& conn,
                             FilterDirection direction) {
  auto session = std::make_unique<ServerSession>();
  ServerSession* raw = session.get();
  raw->id = next_session_id_++;
  raw->conn = &conn;
  raw->direction = direction;
  raw->parser = std::make_unique<http::HttpParser>(http::ParserKind::kRequest);
  const std::uint64_t id = raw->id;
  raw->parser->set_on_request([this, id](http::HttpRequest req) {
    on_session_request(id, std::move(req));
  });
  conn.set_on_data([this, raw, id](std::string_view data) {
    if (!raw->parser->feed(data)) {
      MESHNET_WARN() << "sidecar: request parse error; resetting session";
      // Abort on a fresh simulator step: aborting here would destroy the
      // parser that is currently executing.
      sim_.schedule_after(0, [this, id] {
        const auto it = sessions_.find(id);
        if (it != sessions_.end()) it->second->conn->abort();
      });
    }
  });
  conn.set_on_closed([this, id](bool /*graceful*/) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    ServerSession& s = *it->second;
    if (s.try_timer != sim::kInvalidEventId) sim_.cancel(s.try_timer);
    if (s.busy && s.upstream_pool != nullptr && s.upstream_req != 0) {
      s.upstream_pool->cancel(s.upstream_req);
    }
    sessions_.erase(it);
  });
  sessions_.emplace(id, std::move(session));
}

void Sidecar::on_session_request(std::uint64_t session_id,
                                 http::HttpRequest req) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ServerSession& session = *it->second;
  session.pending.push_back(std::move(req));
  pump_session(session);
}

void Sidecar::pump_session(ServerSession& session) {
  if (session.busy || session.pending.empty()) return;
  session.busy = true;
  http::HttpRequest req = std::move(session.pending.front());
  session.pending.pop_front();
  process_request(session.id, std::move(req), session.direction);
}

http::HttpResponse Sidecar::make_local_response(int status,
                                                std::string_view body) {
  http::HttpResponse response;
  response.status = status;
  response.body = std::string(body);
  response.headers.set("x-served-by", config_.service_name + "-sidecar");
  ++stats_.local_responses;
  return response;
}

void Sidecar::process_request(std::uint64_t session_id, http::HttpRequest req,
                              FilterDirection direction) {
  // Charge the proxy's request-path processing cost before any filter or
  // routing work happens.
  const sim::Duration delay = proxy_delay();
  if (delay > 0) {
    sim_.schedule_after(
        delay, [this, session_id, req = std::move(req), direction]() mutable {
          process_request_now(session_id, std::move(req), direction);
        });
    return;
  }
  process_request_now(session_id, std::move(req), direction);
}

void Sidecar::process_request_now(std::uint64_t session_id,
                                  http::HttpRequest req,
                                  FilterDirection direction) {
  auto ctx = std::make_shared<RequestContext>();
  ctx->request = std::move(req);
  ctx->direction = direction;
  ctx->start_time = sim_.now();
  ctx->source_service =
      ctx->request.headers.get_or("x-mesh-source", "");

  const FilterChain& chain = direction == FilterDirection::kInbound
                                 ? inbound_chain_
                                 : outbound_chain_;
  if (direction == FilterDirection::kInbound) {
    ++stats_.inbound_requests;
  } else {
    ++stats_.outbound_requests;
  }

  if (!chain.run_request(*ctx)) {
    http::HttpResponse response =
        ctx->local_response ? std::move(*ctx->local_response)
                            : make_local_response(403, "filter denied");
    chain.run_response(*ctx, response);
    respond_to_session(session_id, ctx, std::move(response));
    return;
  }

  if (direction == FilterDirection::kInbound) {
    forward_to_app(session_id, std::move(ctx));
  } else {
    route_and_forward(session_id, std::move(ctx));
  }
}

void Sidecar::respond_to_session(std::uint64_t session_id, const Ctx& /*ctx*/,
                                 http::HttpResponse response) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;  // downstream went away
  ServerSession& session = *it->second;
  session.upstream_pool = nullptr;
  session.upstream_req = 0;
  if (session.try_timer != sim::kInvalidEventId) {
    sim_.cancel(session.try_timer);
    session.try_timer = sim::kInvalidEventId;
  }
  // Charge the proxy's response-path processing cost before the bytes hit
  // the wire.
  const sim::Duration delay = proxy_delay();
  auto deliver = [this, session_id,
                  payload = http::serialize_response(response)]() mutable {
    const auto sit = sessions_.find(session_id);
    if (sit == sessions_.end()) return;
    ServerSession& s = *sit->second;
    s.conn->send(std::move(payload));
    s.busy = false;
    pump_session(s);
  };
  if (delay > 0) {
    sim_.schedule_after(delay, std::move(deliver));
  } else {
    deliver();
  }
}

void Sidecar::forward_to_app(std::uint64_t session_id, Ctx ctx) {
  if (!app_pool_) {
    respond_to_session(session_id, ctx,
                       make_local_response(503, "no local app"));
    return;
  }
  http::HttpRequest upstream_req = ctx->request;  // copy: retry-safe
  app_pool_->request(
      std::move(upstream_req),
      [this, session_id, ctx](std::optional<http::HttpResponse> response,
                              const std::string& error) {
        http::HttpResponse resp =
            response ? std::move(*response)
                     : make_local_response(503, "app unreachable: " + error);
        inbound_chain_.run_response(*ctx, resp);
        respond_to_session(session_id, ctx, std::move(resp));
      });
}

const ClusterSpec* Sidecar::resolve_cluster(const std::string& host) const {
  std::string cluster_name = host;
  const auto route = config_.routes.find(host);
  if (route != config_.routes.end()) cluster_name = route->second;
  const auto it = config_.clusters.find(cluster_name);
  return it == config_.clusters.end() ? nullptr : &it->second;
}

std::vector<const cluster::Endpoint*> Sidecar::eligible_endpoints(
    const ClusterSpec& spec, const RequestContext& ctx) {
  std::vector<const cluster::Endpoint*> subset_matched;
  std::vector<const cluster::Endpoint*> all;
  for (const cluster::Endpoint& ep : spec.endpoints) {
    all.push_back(&ep);
    bool matches = true;
    for (const auto& [key, value] : ctx.subset) {
      if (ep.label_or(key, "") != value) {
        matches = false;
        break;
      }
    }
    if (matches) subset_matched.push_back(&ep);
  }
  if (!subset_matched.empty()) return subset_matched;
  if (!ctx.subset.empty() && spec.subset_fallback) return all;
  return subset_matched;  // empty
}

HttpClientPool& Sidecar::pool_for(const cluster::Endpoint& endpoint,
                                  TrafficClass traffic_class,
                                  net::Port port) {
  const PoolKey key{endpoint.ip, port, traffic_class};
  const auto it = pools_.find(key);
  if (it != pools_.end()) return *it->second;
  HttpClientPool::Options options;
  options.connection = connection_options_for(traffic_class);
  options.max_connections = config_.max_pool_connections;
  if (config_.upstream_connection_hook) {
    options.on_connection_created =
        [this, traffic_class](transport::Connection& conn) {
          config_.upstream_connection_hook(conn, traffic_class);
        };
  }
  auto pool = std::make_unique<HttpClientPool>(
      sim_, pod_.transport(), net::SocketAddress{endpoint.ip, port}, options,
      config_.service_name + "->" + endpoint.pod_name + "/" +
          std::string(traffic_class_name(traffic_class)));
  HttpClientPool& ref = *pool;
  pools_.emplace(key, std::move(pool));
  return ref;
}

LoadBalancer& Sidecar::balancer_for(const ClusterSpec& spec) {
  const auto it = balancers_.find(spec.name);
  if (it != balancers_.end()) return *it->second;
  // Seed from a hash of the service + cluster so picks are deterministic
  // but uncorrelated across sidecars.
  std::uint64_t seed = 1469598103934665603ULL;
  for (const char c : config_.service_name + "|" + spec.name) {
    seed = (seed ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return *balancers_.emplace(spec.name, make_balancer(spec.lb, seed))
              .first->second;
}

transport::ConnectionOptions Sidecar::connection_options_for(
    TrafficClass traffic_class) const {
  transport::ConnectionOptions options;
  options.mss = config_.transport_mss;
  const auto it = config_.class_policies.find(traffic_class);
  if (it != config_.class_policies.end()) {
    options.cc = it->second.cc;
    options.dscp = it->second.dscp;
  }
  return options;
}

void Sidecar::route_and_forward(std::uint64_t session_id, Ctx ctx) {
  const std::string host =
      ctx->request.headers.get_or(http::headers::kHost, "");
  if (!ctx->upstream_cluster.empty()) {
    // A filter already routed (e.g. traffic shifting); keep it.
  } else if (const ClusterSpec* spec = resolve_cluster(host)) {
    ctx->upstream_cluster = spec->name;
  } else {
    respond_to_session(session_id, ctx,
                       make_local_response(404, "no route for host " + host));
    return;
  }
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  it->second->deadline = sim_.now() + config_.request_timeout;
  attempt_upstream(session_id, std::move(ctx));
}

void Sidecar::attempt_upstream(std::uint64_t session_id, Ctx ctx) {
  const auto sess_it = sessions_.find(session_id);
  if (sess_it == sessions_.end()) return;  // downstream gone
  ServerSession& session = *sess_it->second;

  const auto cluster_it = config_.clusters.find(ctx->upstream_cluster);
  if (cluster_it == config_.clusters.end()) {
    respond_to_session(session_id, ctx,
                       make_local_response(503, "cluster vanished"));
    return;
  }
  const ClusterSpec& spec = cluster_it->second;

  if (sim_.now() >= session.deadline) {
    ++stats_.timeouts;
    respond_to_session(session_id, ctx,
                       make_local_response(504, "request deadline exceeded"));
    return;
  }

  std::vector<const cluster::Endpoint*> candidates =
      eligible_endpoints(spec, *ctx);
  LbContext lb_ctx;
  lb_ctx.active_requests = [this](const cluster::Endpoint& ep) {
    return active_requests_to(ep.pod_name);
  };
  LoadBalancer& balancer = balancer_for(spec);
  const cluster::Endpoint* chosen = nullptr;
  while (!candidates.empty()) {
    const cluster::Endpoint* pick = balancer.pick(candidates, lb_ctx);
    if (pick == nullptr) break;
    if (breaker_for(spec.name, pick->pod_name).allow_request(sim_.now())) {
      chosen = pick;
      break;
    }
    candidates.erase(std::find(candidates.begin(), candidates.end(), pick));
  }
  if (chosen == nullptr) {
    ++stats_.upstream_failures;
    respond_to_session(
        session_id, ctx,
        make_local_response(503, "no healthy upstream in " + spec.name));
    return;
  }

  ctx->request.headers.set(http::headers::kRetryAttempt,
                           std::to_string(ctx->attempt + 1));
  // The wire hop goes to the remote pod's *inbound sidecar listener*; the
  // Host header tells the remote side which service was meant (the moral
  // equivalent of Istio's iptables redirect preserving metadata).
  HttpClientPool& pool =
      pool_for(*chosen, ctx->traffic_class, config_.inbound_port);
  ++active_per_endpoint_[chosen->pod_name];

  const std::string endpoint_pod = chosen->pod_name;
  const std::string cluster_name = spec.name;
  session.upstream_pool = &pool;
  session.upstream_req = pool.request(
      ctx->request,
      [this, session_id, ctx, cluster_name, endpoint_pod](
          std::optional<http::HttpResponse> response,
          const std::string& error) {
        on_upstream_result(session_id, ctx, cluster_name, endpoint_pod,
                           std::move(response), error);
      });

  if (config_.retry.per_try_timeout > 0) {
    session.try_timer = sim_.schedule_after(
        config_.retry.per_try_timeout,
        [this, session_id, ctx, cluster_name, endpoint_pod] {
          const auto it = sessions_.find(session_id);
          if (it == sessions_.end()) return;
          ServerSession& s = *it->second;
          s.try_timer = sim::kInvalidEventId;
          if (s.upstream_pool != nullptr && s.upstream_req != 0) {
            s.upstream_pool->cancel(s.upstream_req);
            s.upstream_pool = nullptr;
            s.upstream_req = 0;
          }
          ++stats_.timeouts;
          on_upstream_result(session_id, ctx, cluster_name, endpoint_pod,
                             std::nullopt, "per-try timeout");
        });
  }
}

void Sidecar::on_upstream_result(std::uint64_t session_id, Ctx ctx,
                                 const std::string& cluster_name,
                                 const std::string& endpoint_pod,
                                 std::optional<http::HttpResponse> response,
                                 const std::string& error) {
  const auto sess_it = sessions_.find(session_id);
  if (sess_it != sessions_.end()) {
    ServerSession& s = *sess_it->second;
    if (s.try_timer != sim::kInvalidEventId) {
      sim_.cancel(s.try_timer);
      s.try_timer = sim::kInvalidEventId;
    }
    s.upstream_pool = nullptr;
    s.upstream_req = 0;
  }
  auto& active = active_per_endpoint_[endpoint_pod];
  if (active > 0) --active;

  CircuitBreaker& breaker = breaker_for(cluster_name, endpoint_pod);
  const bool success = response.has_value() && response->status < 500;
  if (success) {
    breaker.on_success(sim_.now());
  } else {
    breaker.on_failure(sim_.now());
  }

  const RetryPolicy& retry = config_.retry;
  const bool failed_transport = !response.has_value();
  const bool failed_5xx = response.has_value() && response->status >= 500;
  const bool retryable = (failed_transport && retry.retry_on_reset) ||
                         (failed_5xx && retry.retry_on_5xx);
  if (retryable && ctx->attempt < retry.max_retries &&
      sess_it != sessions_.end()) {
    ++ctx->attempt;
    ++stats_.upstream_retries;
    const sim::Duration backoff = retry.backoff_base * ctx->attempt;
    sim_.schedule_after(backoff, [this, session_id, ctx] {
      attempt_upstream(session_id, ctx);
    });
    return;
  }

  http::HttpResponse final_response =
      response ? std::move(*response)
               : make_local_response(503, "upstream failed: " + error);
  if (!success) ++stats_.upstream_failures;

  if (telemetry_ != nullptr) {
    telemetry_->record_request(config_.service_name, cluster_name,
                               final_response.status,
                               sim_.now() - ctx->start_time, ctx->attempt);
  }
  outbound_chain_.run_response(*ctx, final_response);
  respond_to_session(session_id, ctx, std::move(final_response));
}

}  // namespace meshnet::mesh
