#include "mesh/sidecar.h"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "mesh/config_delta.h"
#include "util/logging.h"

namespace meshnet::mesh {

Sidecar::Sidecar(sim::Simulator& sim, cluster::Pod& pod, Tracer& tracer,
                 TelemetrySink* telemetry, SidecarConfig config)
    : sim_(sim),
      pod_(pod),
      tracer_(tracer),
      telemetry_(telemetry),
      config_(std::move(config)),
      overhead_rng_(0x5ecda, "sidecar:" + pod.name()),
      retry_rng_(0x5ecdb, "retry:" + pod.name()) {}

sim::Duration next_retry_backoff(const RetryPolicy& policy, int attempt,
                                 sim::Duration prev, sim::RngStream& rng) {
  const sim::Duration base = policy.backoff_base;
  const sim::Duration cap = std::max(
      base, policy.backoff_max > 0 ? policy.backoff_max : base * attempt);
  if (!policy.backoff_jitter) {
    return std::clamp(base * attempt, base, cap);
  }
  // AWS "decorrelated jitter": sleep = min(cap, uniform(base, 3 * prev)),
  // seeded with prev = base on the first retry.
  if (prev < base) prev = base;
  const double hi = 3.0 * static_cast<double>(prev);
  const auto sleep = static_cast<sim::Duration>(
      rng.uniform(static_cast<double>(base), hi));
  return std::clamp(sleep, base, cap);
}

sim::Duration Sidecar::proxy_delay() {
  sim::Duration delay = config_.proxy_overhead_base;
  if (config_.proxy_overhead_jitter > 0) {
    delay += sim::from_seconds(overhead_rng_.exponential(
        sim::to_seconds(config_.proxy_overhead_jitter)));
  }
  return delay;
}

Sidecar::~Sidecar() = default;

void Sidecar::start() {
  if (started_) return;
  started_ = true;
  transport::TransportHost& host = pod_.transport();
  if (!config_.gateway_mode && config_.app_port != 0) {
    host.listen(config_.inbound_port, [this](transport::Connection& conn) {
      accept_session(conn, FilterDirection::kInbound);
    });
    HttpClientPool::Options app_options;
    // Sidecar <-> app rides the pod-local loopback (64 KB MTU).
    app_options.connection.mss = 65496;
    app_options.max_connections = config_.max_pool_connections;
    app_pool_ = std::make_unique<HttpClientPool>(
        sim_, host, net::SocketAddress{pod_.ip(), config_.app_port},
        app_options, config_.service_name + ":app");
  }
  host.listen(config_.outbound_port, [this](transport::Connection& conn) {
    accept_session(conn, FilterDirection::kOutbound);
  });
  health_checker_ = std::make_unique<HealthChecker>(
      sim_, host, config_.service_name + "@" + pod_.name(), 0x6ea17);
  health_checker_->set_transition_hook(
      [this](const std::string& cluster, const std::string& pod_name,
             bool healthy, sim::Time at) {
        if (telemetry_ == nullptr) return;
        telemetry_->record_event(
            at, obs::EventKind::kHealth,
            config_.service_name + "->" + cluster + "/" + pod_name,
            healthy ? "readmitted" : "evicted");
      });
  sync_health_targets();
}

std::string validate_config(const SidecarConfig& config) {
  if (config.request_timeout <= 0) return "non-positive request timeout";
  if (config.retry.max_retries < 0) return "negative max_retries";
  if (config.retry.backoff_base <= 0) return "non-positive backoff base";
  if (config.tls.enabled) {
    if (config.tls.max_record_bytes == 0) return "zero TLS record size";
    if (config.tls.handshake_timeout <= 0) {
      return "non-positive TLS handshake timeout";
    }
    if (config.tls.ticket_lifetime <= 0) {
      return "non-positive TLS ticket lifetime";
    }
  }
  for (const auto& [name, spec] : config.clusters) {
    if (name.empty()) return "unnamed cluster";
    if (spec.name != name) return "cluster name mismatch: " + name;
    for (const cluster::Endpoint& ep : spec.endpoints) {
      if (ep.pod_name.empty()) return "endpoint without pod in " + name;
      if (ep.port == 0) return "endpoint without port in " + name;
    }
  }
  for (const auto& [host, target] : config.routes) {
    if (host.empty()) return "route with empty host";
    if (target.empty()) return "route to empty cluster for " + host;
  }
  return {};
}

namespace {

/// FNV-1a accumulator for config fingerprinting.
struct ConfigHasher {
  std::uint64_t h = 14695981039346656037ull;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  template <typename T>
    requires(std::is_integral_v<T> || std::is_enum_v<T>)
  void mix(T v) {
    const auto u = static_cast<std::uint64_t>(v);
    bytes(&u, sizeof(u));
  }
  void mix(double v) { bytes(&v, sizeof(v)); }
  void mix(const std::string& s) {
    mix(s.size());
    bytes(s.data(), s.size());
  }
};

}  // namespace

std::uint64_t hash_cluster_spec(const ClusterSpec& spec) {
  ConfigHasher f;
  f.mix(spec.name);
  f.mix(spec.lb);
  f.mix(spec.breaker.consecutive_failures);
  f.mix(spec.breaker.open_duration);
  f.mix(spec.breaker.half_open_probes);
  f.mix(spec.subset_fallback);
  const HealthCheckConfig& hc = spec.health_check;
  f.mix(hc.enabled);
  f.mix(hc.interval);
  f.mix(hc.timeout);
  f.mix(hc.unhealthy_threshold);
  f.mix(hc.healthy_threshold);
  f.mix(hc.path);
  f.mix(hc.flap_max_transitions);
  f.mix(hc.flap_window);
  f.mix(hc.flap_penalty);
  f.mix(spec.mtls);
  f.mix(spec.endpoints.size());
  for (const cluster::Endpoint& ep : spec.endpoints) {
    f.mix(ep.pod_name);
    f.mix(ep.ip);
    f.mix(ep.port);
    f.mix(ep.labels.size());
    for (const auto& [k, v] : ep.labels) {
      f.mix(k);
      f.mix(v);
    }
  }
  return f.h;
}

std::uint64_t hash_sidecar_config(const SidecarConfig& c) {
  ConfigHasher f;
  f.mix(hash_policy_section(c));
  f.mix(c.routes.size());
  for (const auto& [host, target] : c.routes) {
    f.mix(host);
    f.mix(target);
  }
  f.mix(c.clusters.size());
  for (const auto& [name, spec] : c.clusters) {
    f.mix(name);
    f.mix(hash_cluster_spec(spec));
  }
  return f.h;
}

std::uint64_t hash_policy_section(const SidecarConfig& c) {
  ConfigHasher f;
  f.mix(c.service_name);
  // Listener identity (app/inbound/outbound ports, gateway mode) is
  // excluded: apply_config pins those fields to the live sidecar's
  // values, so a control-plane-compiled config and the config the
  // sidecar actually runs must fingerprint identically for the delta
  // channel's base/target verification to work. They are immutable
  // post-start, so excluding them can never mask a real change.
  f.mix(c.retry.max_retries);
  f.mix(c.retry.per_try_timeout);
  f.mix(c.retry.retry_on_5xx);
  f.mix(c.retry.retry_on_reset);
  f.mix(c.retry.backoff_base);
  f.mix(c.retry.backoff_max);
  f.mix(c.retry.backoff_jitter);
  f.mix(c.retry.retry_budget);
  f.mix(c.retry.retry_budget_min_concurrency);
  f.mix(c.retry.retry_on_overloaded);
  f.mix(c.request_timeout);
  f.mix(c.admission.enabled);
  f.mix(c.admission.queue_capacity);
  f.mix(c.admission.shed_retries_first);
  f.mix(c.admission.reserve_slots);
  const ConcurrencyLimitConfig& lim = c.admission.limit;
  f.mix(lim.initial_limit);
  f.mix(lim.min_limit);
  f.mix(lim.max_limit);
  f.mix(lim.window);
  f.mix(lim.min_window_samples);
  f.mix(lim.latency_tolerance);
  f.mix(lim.additive_increase);
  f.mix(lim.multiplicative_decrease);
  f.mix(lim.baseline_windows);
  f.mix(lim.estimate_alpha);
  f.mix(c.authorization.size());
  for (const auto& [svc, sources] : c.authorization) {
    f.mix(svc);
    f.mix(sources.size());
    for (const std::string& s : sources) f.mix(s);
  }
  f.mix(c.class_policies.size());
  for (const auto& [tc, pol] : c.class_policies) {
    f.mix(tc);
    f.mix(pol.cc);
    f.mix(pol.dscp);
  }
  f.mix(c.transport_mss);
  f.mix(c.max_pool_connections);
  f.mix(c.proxy_overhead_base);
  f.mix(c.proxy_overhead_jitter);
  f.mix(static_cast<bool>(c.upstream_connection_hook));
  f.mix(c.identity_cert.serial);
  f.mix(c.tls.enabled);
  f.mix(c.tls.session_resumption);
  f.mix(c.tls.handshake_timeout);
  f.mix(c.tls.handshake_cpu_server);
  f.mix(c.tls.handshake_cpu_client);
  f.mix(c.tls.handshake_cpu_resumed);
  f.mix(c.tls.aead_per_record);
  f.mix(c.tls.aead_per_kb);
  f.mix(c.tls.max_record_bytes);
  f.mix(c.tls.session_cache_capacity);
  f.mix(c.tls.ticket_lifetime);
  return f.h;
}

bool Sidecar::apply_config(SidecarConfig config) {
  // Identity and listener ports are immutable post-start.
  config.service_name = config_.service_name;
  config.app_port = config_.app_port;
  config.inbound_port = config_.inbound_port;
  config.outbound_port = config_.outbound_port;
  config.gateway_mode = config_.gateway_mode;
  if (config.epoch != 0 && config.epoch < config_.epoch) {
    ++stats_.configs_rejected;
    last_config_error_ = "stale-epoch";
    return false;
  }
  const std::string error = validate_config(config);
  if (!error.empty()) {
    ++stats_.configs_rejected;
    last_config_error_ = error;
    MESHNET_DEBUG() << pod_.name() << " nacked config push: " << error;
    return false;
  }
  last_config_error_.clear();
  ++stats_.configs_applied;
  config_ = std::move(config);
  // Balancers are rebuilt lazily so a changed LB policy takes effect.
  balancers_.clear();
  sync_health_targets();
  // A push may retune the ticket-cache bound; existing entries are
  // LRU-evicted if it shrank.
  if (tls_runtime_ != nullptr) {
    tls_runtime_->session_cache().set_capacity(
        config_.tls.session_cache_capacity);
  }
  // The admission controller carries learned state (the adaptive limit,
  // queued requests), so it is created once on the first enabling push
  // and survives subsequent pushes.
  if (config_.admission.enabled && admission_ == nullptr) {
    admission_ = std::make_unique<AdmissionController>(
        config_.service_name, config_.admission,
        telemetry_ != nullptr ? &telemetry_->registry() : nullptr);
  }
  return true;
}

bool Sidecar::apply_config_delta(const ConfigDelta& delta) {
  if (delta.epoch != 0 && delta.epoch < config_.epoch) {
    ++stats_.configs_rejected;
    last_config_error_ = "stale-epoch";
    return false;
  }
  if (hash_sidecar_config(config_) != delta.base_hash) {
    // The control plane diffed against a config this sidecar is not
    // running (e.g. a direct test poke mutated local state). Refuse —
    // blindly patching an unknown base could route to stale endpoints —
    // and let the control plane fall back to a full push.
    ++stats_.configs_rejected;
    ++stats_.delta_mismatches;
    last_config_error_ = "delta-base-mismatch";
    return false;
  }
  SidecarConfig candidate = mesh::apply_config_delta(config_, delta);
  if (hash_sidecar_config(candidate) != delta.target_hash) {
    ++stats_.configs_rejected;
    ++stats_.delta_mismatches;
    last_config_error_ = "delta-target-mismatch";
    return false;
  }
  if (!apply_config(std::move(candidate))) return false;
  ++stats_.deltas_applied;
  return true;
}

void Sidecar::sync_health_targets() {
  if (!health_checker_) return;
  std::vector<std::string> names;
  names.reserve(config_.clusters.size());
  for (const auto& [name, spec] : config_.clusters) {
    names.push_back(name);
    health_checker_->update_targets(name, spec.health_check, spec.endpoints,
                                    config_.inbound_port);
  }
  health_checker_->retain_clusters(names);
}

std::uint64_t Sidecar::active_requests_to(const std::string& pod_name) const {
  const auto it = active_per_endpoint_.find(pod_name);
  return it == active_per_endpoint_.end() ? 0 : it->second;
}

CircuitBreaker& Sidecar::breaker_for(const std::string& cluster_name,
                                     const std::string& pod_name) {
  const std::string key = cluster_name + "/" + pod_name;
  const auto it = breakers_.find(key);
  if (it != breakers_.end()) return it->second;
  const auto spec_it = config_.clusters.find(cluster_name);
  CircuitBreakerConfig cfg =
      spec_it == config_.clusters.end() ? CircuitBreakerConfig{}
                                        : spec_it->second.breaker;
  CircuitBreaker& breaker =
      breakers_.emplace(key, CircuitBreaker(cfg)).first->second;
  if (telemetry_ != nullptr) {
    breaker.set_transition_hook(
        [this, key](CircuitState from, CircuitState to, sim::Time at) {
          telemetry_->record_event(
              at, obs::EventKind::kBreaker, config_.service_name + "->" + key,
              std::string(circuit_state_name(from)) + "->" +
                  std::string(circuit_state_name(to)));
        });
  }
  return breaker;
}

void Sidecar::accept_session(transport::Connection& conn,
                             FilterDirection direction) {
  auto session = std::make_unique<ServerSession>();
  ServerSession* raw = session.get();
  raw->id = next_session_id_++;
  raw->conn = &conn;
  raw->direction = direction;
  raw->parser = std::make_unique<http::HttpParser>(http::ParserKind::kRequest);
  const std::uint64_t id = raw->id;
  raw->parser->set_on_request([this, id](http::HttpRequest req) {
    on_session_request(id, std::move(req));
  });
  conn.set_on_data([this, raw, id, direction](std::string_view data) {
    if (!raw->sniffed) {
      // First downstream bytes decide the session's framing: a TLS
      // ClientHello record (type byte 0x01) upgrades the inbound session
      // to TLS; printable ASCII (an HTTP method, a health probe) stays
      // plaintext. The listener is deliberately permissive so plaintext
      // peers keep working while mTLS rolls out across config epochs.
      raw->sniffed = true;
      if (direction == FilterDirection::kInbound && config_.tls.enabled &&
          !data.empty() && static_cast<unsigned char>(data[0]) < 0x20) {
        setup_server_tls(*raw);
      }
    }
    if (raw->tls != nullptr) {
      raw->tls->on_wire_data(data);
    } else {
      feed_session_parser(*raw, data);
    }
  });
  conn.set_on_closed([this, id](bool /*graceful*/) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    ServerSession& s = *it->second;
    if (s.try_timer != sim::kInvalidEventId) sim_.cancel(s.try_timer);
    if (s.deadline_timer != sim::kInvalidEventId) sim_.cancel(s.deadline_timer);
    if (s.tls != nullptr) s.tls->shutdown();
    // An upstream cancel suppresses the pool handler, which would leak
    // the in-flight request's span and telemetry sample: finish the
    // abandoned request through the finish_outbound funnel (as a 499)
    // after the session is gone — respond_to_session then no-ops.
    const bool abandoned_upstream =
        s.busy && s.upstream_pool != nullptr && s.upstream_req != 0;
    if (abandoned_upstream) s.upstream_pool->cancel(s.upstream_req);
    Ctx abandoned = abandoned_upstream ? std::move(s.active) : nullptr;
    const std::string cluster = s.upstream_cluster;
    const std::string endpoint = s.upstream_endpoint;
    sessions_.erase(it);
    if (abandoned != nullptr) {
      ++stats_.downstream_aborts;
      http::HttpResponse response;
      response.status = 499;
      response.body = "downstream closed mid-request";
      response.headers.set("x-served-by", config_.service_name + "-sidecar");
      finish_outbound(id, abandoned, cluster, endpoint, std::move(response));
    }
  });
  sessions_.emplace(id, std::move(session));
}

void Sidecar::feed_session_parser(ServerSession& session,
                                  std::string_view data) {
  if (!session.parser->feed(data)) {
    MESHNET_WARN() << "sidecar: request parse error; resetting session";
    // Abort on a fresh simulator step: aborting here would destroy the
    // parser that is currently executing.
    const std::uint64_t id = session.id;
    sim_.schedule_after(0, [this, id] {
      const auto it = sessions_.find(id);
      if (it != sessions_.end()) it->second->conn->abort();
    });
  }
}

void Sidecar::setup_server_tls(ServerSession& session) {
  const std::uint64_t id = session.id;
  auto channel = std::make_shared<TlsChannel>(
      sim_, TlsChannel::Role::kServer, &config_.tls, &config_.identity_cert,
      &tls_runtime(), /*peer_key=*/"");
  session.tls = channel;
  channel->set_send_wire([this, id](std::string bytes) {
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) it->second->conn->send(std::move(bytes));
  });
  channel->set_on_plaintext([this, id](std::string_view data) {
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) feed_session_parser(*it->second, data);
  });
  // Handshake failures (alert sent, malformed records, timeout) tear the
  // downstream connection down; the client side surfaces the error
  // through its pool handler. Delivered via a zero-delay event, so
  // aborting here is safe.
  channel->set_on_error([this, id](const std::string& reason) {
    MESHNET_DEBUG() << "sidecar: inbound TLS error: " << reason;
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) it->second->conn->abort();
  });
  channel->start();
}

TlsRuntime& Sidecar::tls_runtime() {
  if (tls_runtime_ == nullptr) {
    tls_runtime_ = std::make_unique<TlsRuntime>(
        telemetry_ != nullptr ? &telemetry_->registry() : nullptr,
        config_.tls.session_cache_capacity);
  }
  return *tls_runtime_;
}

void Sidecar::on_session_request(std::uint64_t session_id,
                                 http::HttpRequest req) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ServerSession& session = *it->second;
  session.pending.push_back(std::move(req));
  pump_session(session);
}

void Sidecar::pump_session(ServerSession& session) {
  if (session.busy || session.pending.empty()) return;
  session.busy = true;
  http::HttpRequest req = std::move(session.pending.front());
  session.pending.pop_front();
  process_request(session.id, std::move(req), session.direction);
}

http::HttpResponse Sidecar::make_local_response(int status,
                                                std::string_view body) {
  http::HttpResponse response;
  response.status = status;
  response.body = std::string(body);
  response.headers.set("x-served-by", config_.service_name + "-sidecar");
  ++stats_.local_responses;
  return response;
}

void Sidecar::process_request(std::uint64_t session_id, http::HttpRequest req,
                              FilterDirection direction) {
  // Charge the proxy's request-path processing cost before any filter or
  // routing work happens.
  const sim::Duration delay = proxy_delay();
  if (delay > 0) {
    sim_.schedule_after(
        delay, [this, session_id, req = std::move(req), direction]() mutable {
          process_request_now(session_id, std::move(req), direction);
        });
    return;
  }
  process_request_now(session_id, std::move(req), direction);
}

void Sidecar::process_request_now(std::uint64_t session_id,
                                  http::HttpRequest req,
                                  FilterDirection direction) {
  auto ctx = std::make_shared<RequestContext>();
  ctx->request = std::move(req);
  ctx->direction = direction;
  ctx->start_time = sim_.now();
  ctx->source_service =
      ctx->request.headers.get_or(http::headers::Id::kMeshSource, "");
  // Remember the active context so a downstream close mid-request can
  // still finish it (and close its span) through finish_outbound.
  if (const auto sit = sessions_.find(session_id); sit != sessions_.end()) {
    sit->second->active = ctx;
  }

  // Health probes are answered by the sidecar itself, before the filter
  // chain (authorization must not 403 them) and without touching the app:
  // the probe's question is "is this pod's sidecar alive and reachable",
  // and a crashed pod takes its sidecar down with it.
  if (direction == FilterDirection::kInbound &&
      ctx->request.path == kHealthCheckPath) {
    ++stats_.health_probes_answered;
    http::HttpResponse response;
    response.status = 200;
    response.body = "ok";
    response.headers.set("x-served-by", config_.service_name + "-sidecar");
    respond_to_session(session_id, ctx, std::move(response));
    return;
  }

  const FilterChain& chain = direction == FilterDirection::kInbound
                                 ? inbound_chain_
                                 : outbound_chain_;
  if (direction == FilterDirection::kInbound) {
    ++stats_.inbound_requests;
  } else {
    ++stats_.outbound_requests;
  }

  const ChainResult chain_result = chain.run_request(*ctx);
  if (chain_result == ChainResult::kPaused) {
    // The admission filter parked the request in its priority queue.
    // Attach the two continuations; exactly one fires, on a later
    // admission event (a completion freeing capacity, or a preemption).
    admission_->bind(
        ctx->admission_ticket,
        [this, session_id, ctx, direction] {
          ctx->admission_admitted = true;
          ctx->admission_dispatch_time = sim_.now();
          if (ctx->injected_delay > 0) {
            sim_.schedule_after(ctx->injected_delay,
                                [this, session_id, ctx, direction]() mutable {
                                  continue_request(session_id, std::move(ctx),
                                                   direction);
                                });
            return;
          }
          continue_request(session_id, ctx, direction);
        },
        [this, session_id, ctx, direction](ShedReason reason) {
          ctx->shed_reason = std::string(shed_reason_name(reason));
          http::HttpResponse response = make_local_response(
              503, "admission shed: " + ctx->shed_reason);
          response.headers.set(http::headers::Id::kShedReason,
                               ctx->shed_reason);
          const FilterChain& c = direction == FilterDirection::kInbound
                                     ? inbound_chain_
                                     : outbound_chain_;
          c.run_response(*ctx, response);
          respond_to_session(session_id, ctx, std::move(response));
        });
    return;
  }
  if (chain_result == ChainResult::kStopped) {
    http::HttpResponse response =
        ctx->local_response ? std::move(*ctx->local_response)
                            : make_local_response(403, "filter denied");
    if (!ctx->shed_reason.empty()) ++stats_.local_responses;
    auto deliver = [this, session_id, ctx, direction,
                    response = std::move(response)]() mutable {
      const FilterChain& c = direction == FilterDirection::kInbound
                                 ? inbound_chain_
                                 : outbound_chain_;
      c.run_response(*ctx, response);
      respond_to_session(session_id, ctx, std::move(response));
    };
    // A delayed abort (fault filter) still pays the injected delay.
    if (ctx->injected_delay > 0) {
      sim_.schedule_after(ctx->injected_delay, std::move(deliver));
    } else {
      deliver();
    }
    return;
  }

  if (ctx->injected_delay > 0) {
    sim_.schedule_after(ctx->injected_delay,
                        [this, session_id, ctx, direction]() mutable {
                          continue_request(session_id, std::move(ctx),
                                           direction);
                        });
    return;
  }
  continue_request(session_id, std::move(ctx), direction);
}

void Sidecar::continue_request(std::uint64_t session_id, Ctx ctx,
                               FilterDirection direction) {
  if (direction == FilterDirection::kInbound) {
    forward_to_app(session_id, std::move(ctx));
  } else {
    route_and_forward(session_id, std::move(ctx));
  }
}

void Sidecar::respond_to_session(std::uint64_t session_id, const Ctx& /*ctx*/,
                                 http::HttpResponse response) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;  // downstream went away
  ServerSession& session = *it->second;
  session.upstream_pool = nullptr;
  session.upstream_req = 0;
  session.active.reset();
  if (session.try_timer != sim::kInvalidEventId) {
    sim_.cancel(session.try_timer);
    session.try_timer = sim::kInvalidEventId;
  }
  if (session.deadline_timer != sim::kInvalidEventId) {
    sim_.cancel(session.deadline_timer);
    session.deadline_timer = sim::kInvalidEventId;
  }
  ++session.request_seq;
  // Charge the proxy's response-path processing cost before the bytes hit
  // the wire.
  const sim::Duration delay = proxy_delay();
  auto deliver = [this, session_id,
                  payload = http::serialize_response(response)]() mutable {
    const auto sit = sessions_.find(session_id);
    if (sit == sessions_.end()) return;
    ServerSession& s = *sit->second;
    if (s.tls != nullptr) {
      s.tls->send_app_data(std::move(payload));
    } else {
      s.conn->send(std::move(payload));
    }
    s.busy = false;
    pump_session(s);
  };
  if (delay > 0) {
    sim_.schedule_after(delay, std::move(deliver));
  } else {
    deliver();
  }
}

void Sidecar::forward_to_app(std::uint64_t session_id, Ctx ctx) {
  if (!app_pool_) {
    http::HttpResponse response = make_local_response(503, "no local app");
    inbound_chain_.run_response(*ctx, response);
    respond_to_session(session_id, ctx, std::move(response));
    return;
  }
  http::HttpRequest upstream_req = ctx->request;  // copy: retry-safe
  app_pool_->request(
      std::move(upstream_req),
      [this, session_id, ctx](std::optional<http::HttpResponse> response,
                              const std::string& error) {
        http::HttpResponse resp =
            response ? std::move(*response)
                     : make_local_response(503, "app unreachable: " + error);
        inbound_chain_.run_response(*ctx, resp);
        respond_to_session(session_id, ctx, std::move(resp));
      });
}

void Sidecar::finish_outbound(std::uint64_t session_id, const Ctx& ctx,
                              const std::string& cluster_name,
                              const std::string& endpoint_pod,
                              http::HttpResponse response) {
  const sim::Duration latency = sim_.now() - ctx->start_time;
  if (telemetry_ != nullptr) {
    if (!cluster_name.empty()) {
      RequestSample sample;
      sample.source = config_.service_name;
      sample.upstream = cluster_name;
      sample.status = response.status;
      sample.latency = latency;
      sample.retries = ctx->attempt;
      sample.priority = ctx->traffic_class;
      telemetry_->record_request(sample);
    }
    obs::AccessLog& log = telemetry_->access_log();
    if (log.enabled()) {
      obs::AccessLogRecord record;
      record.at = sim_.now();
      record.source = config_.service_name;
      record.route = ctx->request.path;
      record.upstream_cluster = cluster_name;
      record.upstream_endpoint = endpoint_pod;
      record.priority = std::string(traffic_class_name(ctx->traffic_class));
      record.status = response.status;
      record.retries = ctx->attempt;
      record.latency = latency;
      // Shed either locally (this sidecar's admission filter) or by the
      // upstream (marker header on its 503).
      record.shed_reason =
          !ctx->shed_reason.empty()
              ? ctx->shed_reason
              : response.headers.get_or(http::headers::Id::kShedReason, "");
      const auto it = sessions_.find(session_id);
      if (it != sessions_.end() && it->second->deadline > 0) {
        record.deadline_slack = it->second->deadline - sim_.now();
      }
      log.record(std::move(record));
    }
  }
  // Closing the outbound chain here — not at each call site — is what
  // guarantees every request span gets an end time: 404s, vanished
  // clusters, exhausted upstreams and armed-deadline abandonments all
  // funnel through this path.
  outbound_chain_.run_response(*ctx, response);
  respond_to_session(session_id, ctx, std::move(response));
}

const ClusterSpec* Sidecar::resolve_cluster(const std::string& host) const {
  std::string cluster_name = host;
  const auto route = config_.routes.find(host);
  if (route != config_.routes.end()) cluster_name = route->second;
  const auto it = config_.clusters.find(cluster_name);
  return it == config_.clusters.end() ? nullptr : &it->second;
}

std::vector<const cluster::Endpoint*> Sidecar::eligible_endpoints(
    const ClusterSpec& spec, const RequestContext& ctx, bool ignore_health) {
  // Active health checking narrows the candidate set first; if *every*
  // endpoint is evicted, panic-route over the full set (Envoy's panic
  // threshold, degenerate form) — probes can be wrong, a guaranteed 503
  // never is right.
  std::vector<const cluster::Endpoint*> considered;
  for (const cluster::Endpoint& ep : spec.endpoints) {
    if (ignore_health || !spec.health_check.enabled ||
        health_checker_ == nullptr ||
        health_checker_->healthy(spec.name, ep.pod_name)) {
      considered.push_back(&ep);
    }
  }
  if (considered.empty()) {
    for (const cluster::Endpoint& ep : spec.endpoints) {
      considered.push_back(&ep);
    }
  }

  std::vector<const cluster::Endpoint*> subset_matched;
  std::vector<const cluster::Endpoint*> all;
  for (const cluster::Endpoint* ep_ptr : considered) {
    const cluster::Endpoint& ep = *ep_ptr;
    all.push_back(&ep);
    bool matches = true;
    for (const auto& [key, value] : ctx.subset) {
      if (ep.label_or(key, "") != value) {
        matches = false;
        break;
      }
    }
    if (matches) subset_matched.push_back(&ep);
  }
  if (!subset_matched.empty()) return subset_matched;
  if (!ctx.subset.empty() && spec.subset_fallback) return all;
  return subset_matched;  // empty
}

HttpClientPool& Sidecar::pool_for(const cluster::Endpoint& endpoint,
                                  TrafficClass traffic_class, net::Port port,
                                  bool mtls) {
  // mTLS is part of the pool key: toggling a cluster's mtls flag mid-run
  // routes new requests through a fresh pool with the right framing
  // while the old one drains.
  const PoolKey key{endpoint.ip, port, traffic_class, mtls};
  const auto it = pools_.find(key);
  if (it != pools_.end()) return *it->second;
  HttpClientPool::Options options;
  options.connection = connection_options_for(traffic_class);
  options.max_connections = config_.max_pool_connections;
  if (mtls) {
    options.tls.enabled = true;
    // Stable addresses into the running config: apply_config move-assigns
    // config_ in place, so rotation pushes reach the next handshake
    // without rewiring the pool.
    options.tls.params = &config_.tls;
    options.tls.local_cert = &config_.identity_cert;
    options.tls.runtime = &tls_runtime();
  }
  if (config_.upstream_connection_hook) {
    options.on_connection_created =
        [this, traffic_class](transport::Connection& conn) {
          config_.upstream_connection_hook(conn, traffic_class);
        };
  }
  auto pool = std::make_unique<HttpClientPool>(
      sim_, pod_.transport(), net::SocketAddress{endpoint.ip, port}, options,
      config_.service_name + "->" + endpoint.pod_name + "/" +
          std::string(traffic_class_name(traffic_class)));
  HttpClientPool& ref = *pool;
  pools_.emplace(key, std::move(pool));
  return ref;
}

LoadBalancer& Sidecar::balancer_for(const ClusterSpec& spec) {
  const auto it = balancers_.find(spec.name);
  if (it != balancers_.end()) return *it->second;
  // Seed from a hash of the service + cluster so picks are deterministic
  // but uncorrelated across sidecars.
  std::uint64_t seed = 1469598103934665603ULL;
  for (const char c : config_.service_name + "|" + spec.name) {
    seed = (seed ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return *balancers_.emplace(spec.name, make_balancer(spec.lb, seed))
              .first->second;
}

transport::ConnectionOptions Sidecar::connection_options_for(
    TrafficClass traffic_class) const {
  transport::ConnectionOptions options;
  options.mss = config_.transport_mss;
  const auto it = config_.class_policies.find(traffic_class);
  if (it != config_.class_policies.end()) {
    options.cc = it->second.cc;
    options.dscp = it->second.dscp;
  }
  return options;
}

void Sidecar::route_and_forward(std::uint64_t session_id, Ctx ctx) {
  const std::string host =
      ctx->request.headers.get_or(http::headers::Id::kHost, "");
  if (!ctx->upstream_cluster.empty()) {
    // A filter already routed (e.g. traffic shifting); keep it.
  } else if (const ClusterSpec* spec = resolve_cluster(host)) {
    ctx->upstream_cluster = spec->name;
  } else {
    finish_outbound(session_id, ctx, /*cluster_name=*/"", /*endpoint_pod=*/"",
                    make_local_response(404, "no route for host " + host));
    return;
  }
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  it->second->deadline = sim_.now() + config_.request_timeout;
  // The end-to-end deadline is an armed timer, not a lazy check: it must
  // fire even when the request is parked on a dead upstream with no retry
  // configured to re-enter the attempt path.
  if (config_.request_timeout > 0) {
    const std::uint64_t seq = it->second->request_seq;
    it->second->deadline_timer = sim_.schedule_after(
        config_.request_timeout, [this, session_id, ctx, seq] {
          on_request_deadline(session_id, ctx, seq);
        });
  }
  attempt_upstream(session_id, std::move(ctx));
}

void Sidecar::on_request_deadline(std::uint64_t session_id, Ctx ctx,
                                  std::uint64_t seq) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ServerSession& s = *it->second;
  if (s.request_seq != seq) return;  // request already answered
  s.deadline_timer = sim::kInvalidEventId;
  ++stats_.timeouts;
  if (s.upstream_pool != nullptr && s.upstream_req != 0) {
    s.upstream_pool->cancel(s.upstream_req);
    s.upstream_pool = nullptr;
    s.upstream_req = 0;
    // Unwind through the normal result path so per-endpoint/per-cluster
    // accounting and the breaker see the failure; the deadline check
    // there suppresses any retry.
    on_upstream_result(session_id, ctx, s.upstream_cluster,
                       s.upstream_endpoint, std::nullopt,
                       "request deadline exceeded");
    return;
  }
  // Between attempts (retry backoff): nothing in flight to unwind.
  finish_outbound(session_id, ctx, ctx->upstream_cluster,
                  s.upstream_endpoint,
                  make_local_response(504, "request deadline exceeded"));
}

void Sidecar::attempt_upstream(std::uint64_t session_id, Ctx ctx) {
  const auto sess_it = sessions_.find(session_id);
  if (sess_it == sessions_.end()) return;  // downstream gone
  ServerSession& session = *sess_it->second;

  const auto cluster_it = config_.clusters.find(ctx->upstream_cluster);
  if (cluster_it == config_.clusters.end()) {
    finish_outbound(session_id, ctx, ctx->upstream_cluster,
                    /*endpoint_pod=*/"",
                    make_local_response(503, "cluster vanished"));
    return;
  }
  const ClusterSpec& spec = cluster_it->second;

  if (sim_.now() >= session.deadline) {
    ++stats_.timeouts;
    finish_outbound(session_id, ctx, ctx->upstream_cluster,
                    /*endpoint_pod=*/"",
                    make_local_response(504, "request deadline exceeded"));
    return;
  }

  std::vector<const cluster::Endpoint*> candidates =
      eligible_endpoints(spec, *ctx);
  LbContext lb_ctx;
  lb_ctx.active_requests = [this](const cluster::Endpoint& ep) {
    return active_requests_to(ep.pod_name);
  };
  LoadBalancer& balancer = balancer_for(spec);
  const auto pick_allowed =
      [&](std::vector<const cluster::Endpoint*> pool) -> const
      cluster::Endpoint* {
    while (!pool.empty()) {
      const cluster::Endpoint* pick = balancer.pick(pool, lb_ctx);
      if (pick == nullptr) break;
      if (breaker_for(spec.name, pick->pod_name).allow_request(sim_.now())) {
        return pick;
      }
      pool.erase(std::find(pool.begin(), pool.end(), pick));
    }
    return nullptr;
  };
  // Retries prefer endpoints this request has not failed on yet
  // (Envoy's previous-hosts retry predicate): a retry that re-picks the
  // pod that just timed out burns its whole per-try budget relearning
  // what the request already knows.
  const auto without_tried = [&](std::vector<const cluster::Endpoint*> pool) {
    if (ctx->tried_pods.empty()) return pool;
    std::vector<const cluster::Endpoint*> untried;
    for (const cluster::Endpoint* ep : pool) {
      if (std::find(ctx->tried_pods.begin(), ctx->tried_pods.end(),
                    ep->pod_name) == ctx->tried_pods.end()) {
        untried.push_back(ep);
      }
    }
    return untried;
  };
  // Preference order: (1) health-admitted and untried; (2) any untried
  // endpoint, health belief ignored — under a churn storm the
  // active-probe belief lags reality by a full probe round, and a pod
  // that just timed out for THIS request is stronger evidence than a
  // stale probe verdict for another; (3) health-admitted, tried or not;
  // (4) anything. Breakers are honored at every tier.
  const cluster::Endpoint* chosen = pick_allowed(without_tried(candidates));
  const bool health_filtered =
      spec.health_check.enabled && health_checker_ != nullptr;
  if (chosen == nullptr && health_filtered && !ctx->tried_pods.empty()) {
    chosen = pick_allowed(without_tried(
        eligible_endpoints(spec, *ctx, /*ignore_health=*/true)));
    if (chosen != nullptr) ++stats_.panic_picks;
  }
  if (chosen == nullptr) chosen = pick_allowed(std::move(candidates));
  if (chosen == nullptr && health_filtered) {
    // Second-level panic: every endpoint the health checker admits is
    // breaker-rejected. Probes can be wrong; a guaranteed 503 never is
    // right.
    chosen =
        pick_allowed(eligible_endpoints(spec, *ctx, /*ignore_health=*/true));
    if (chosen != nullptr) ++stats_.panic_picks;
  }
  if (chosen == nullptr) {
    ++stats_.upstream_failures;
    finish_outbound(
        session_id, ctx, spec.name, /*endpoint_pod=*/"",
        make_local_response(503, "no healthy upstream in " + spec.name));
    return;
  }

  ctx->request.headers.set(http::headers::Id::kRetryAttempt,
                           std::to_string(ctx->attempt + 1));
  // Advertise the remaining deadline budget so the serving sidecar's
  // admission controller can shed requests it cannot answer in time.
  if (config_.request_timeout > 0 && session.deadline > sim_.now()) {
    const sim::Duration remaining = session.deadline - sim_.now();
    ctx->request.headers.set(
        http::headers::Id::kDeadlineMs,
        std::to_string(std::max<sim::Duration>(
            1, remaining / sim::milliseconds(1))));
  }
  // The wire hop goes to the remote pod's *inbound sidecar listener*; the
  // Host header tells the remote side which service was meant (the moral
  // equivalent of Istio's iptables redirect preserving metadata).
  HttpClientPool& pool =
      pool_for(*chosen, ctx->traffic_class, config_.inbound_port, spec.mtls);
  ++active_per_endpoint_[chosen->pod_name];
  ++inflight_per_cluster_[spec.name];
  if (ctx->attempt > 0) ++inflight_retries_per_cluster_[spec.name];

  const std::string endpoint_pod = chosen->pod_name;
  if (std::find(ctx->tried_pods.begin(), ctx->tried_pods.end(),
                endpoint_pod) == ctx->tried_pods.end()) {
    ctx->tried_pods.push_back(endpoint_pod);
  }
  const std::string cluster_name = spec.name;
  session.upstream_cluster = cluster_name;
  session.upstream_endpoint = endpoint_pod;
  session.upstream_pool = &pool;
  session.upstream_req = pool.request(
      ctx->request,
      [this, session_id, ctx, cluster_name, endpoint_pod](
          std::optional<http::HttpResponse> response,
          const std::string& error) {
        on_upstream_result(session_id, ctx, cluster_name, endpoint_pod,
                           std::move(response), error);
      });

  if (config_.retry.per_try_timeout > 0) {
    session.try_timer = sim_.schedule_after(
        config_.retry.per_try_timeout,
        [this, session_id, ctx, cluster_name, endpoint_pod] {
          const auto it = sessions_.find(session_id);
          if (it == sessions_.end()) return;
          ServerSession& s = *it->second;
          s.try_timer = sim::kInvalidEventId;
          if (s.upstream_pool != nullptr && s.upstream_req != 0) {
            s.upstream_pool->cancel(s.upstream_req);
            s.upstream_pool = nullptr;
            s.upstream_req = 0;
          }
          ++stats_.timeouts;
          on_upstream_result(session_id, ctx, cluster_name, endpoint_pod,
                             std::nullopt, "per-try timeout");
        });
  }
}

void Sidecar::on_upstream_result(std::uint64_t session_id, Ctx ctx,
                                 const std::string& cluster_name,
                                 const std::string& endpoint_pod,
                                 std::optional<http::HttpResponse> response,
                                 const std::string& error) {
  const auto sess_it = sessions_.find(session_id);
  if (sess_it != sessions_.end()) {
    ServerSession& s = *sess_it->second;
    if (s.try_timer != sim::kInvalidEventId) {
      sim_.cancel(s.try_timer);
      s.try_timer = sim::kInvalidEventId;
    }
    s.upstream_pool = nullptr;
    s.upstream_req = 0;
  }
  auto& active = active_per_endpoint_[endpoint_pod];
  if (active > 0) --active;
  auto& inflight = inflight_per_cluster_[cluster_name];
  if (inflight > 0) --inflight;
  if (ctx->attempt > 0) {
    auto& inflight_retries = inflight_retries_per_cluster_[cluster_name];
    if (inflight_retries > 0) --inflight_retries;
  }

  // An x-mesh-shed 503 is the upstream's admission controller saying
  // "overloaded, by policy": the endpoint is alive and answering fast.
  // It must not trip the breaker (a shed storm on low-priority traffic
  // would open the breaker and take the high-priority traffic with it),
  // and retrying it amplifies the overload, so it is non-retryable
  // unless explicitly opted in.
  const bool shed_by_upstream =
      response.has_value() &&
      response->headers.has(http::headers::Id::kShedReason);

  CircuitBreaker& breaker = breaker_for(cluster_name, endpoint_pod);
  const bool success = response.has_value() && response->status < 500;
  if (success || shed_by_upstream) {
    breaker.on_success(sim_.now());
  } else {
    breaker.on_failure(sim_.now());
  }

  const RetryPolicy& retry = config_.retry;
  const bool failed_transport = !response.has_value();
  const bool failed_5xx = response.has_value() && response->status >= 500;
  bool retryable = (failed_transport && retry.retry_on_reset) ||
                   (failed_5xx && retry.retry_on_5xx);
  if (retryable && shed_by_upstream && !retry.retry_on_overloaded) {
    if (ctx->attempt < retry.max_retries) {
      ++stats_.retries_suppressed_by_overload;
    }
    retryable = false;
  }
  if (retryable && ctx->attempt < retry.max_retries &&
      sess_it != sessions_.end() && sim_.now() < sess_it->second->deadline) {
    // Retry budget: active retries may be at most `retry_budget` of the
    // cluster's in-flight requests (with a small floor). Past it, the
    // failure is returned rather than amplified (Envoy's retry_budget).
    bool budget_ok = true;
    if (retry.retry_budget > 0.0) {
      const double allowed = std::max(
          retry.retry_budget * static_cast<double>(inflight),
          static_cast<double>(retry.retry_budget_min_concurrency));
      budget_ok =
          static_cast<double>(inflight_retries_per_cluster_[cluster_name]) <
          allowed;
      if (!budget_ok) ++stats_.retries_denied_by_budget;
    }
    if (budget_ok) {
      ++ctx->attempt;
      ++stats_.upstream_retries;
      const sim::Duration backoff = next_retry_backoff(
          retry, ctx->attempt, ctx->prev_backoff, retry_rng_);
      ctx->prev_backoff = backoff;
      const std::uint64_t seq = sess_it->second->request_seq;
      sim_.schedule_after(backoff, [this, session_id, ctx, seq] {
        const auto it = sessions_.find(session_id);
        if (it == sessions_.end() || it->second->request_seq != seq) return;
        attempt_upstream(session_id, ctx);
      });
      return;
    }
  }

  const bool deadline_exceeded =
      failed_transport && error == "request deadline exceeded";
  http::HttpResponse final_response =
      response ? std::move(*response)
               : make_local_response(deadline_exceeded ? 504 : 503,
                                     "upstream failed: " + error);
  if (!success) ++stats_.upstream_failures;

  finish_outbound(session_id, ctx, cluster_name, endpoint_pod,
                  std::move(final_response));
}

}  // namespace meshnet::mesh
