#include "mesh/filter.h"

namespace meshnet::mesh {

std::string_view traffic_class_name(TrafficClass c) noexcept {
  switch (c) {
    case TrafficClass::kDefault:
      return "default";
    case TrafficClass::kLatencySensitive:
      return "latency-sensitive";
    case TrafficClass::kScavenger:
      return "scavenger";
  }
  return "?";
}

void FilterChain::insert_before(std::string_view name,
                                std::shared_ptr<HttpFilter> filter) {
  for (auto it = filters_.begin(); it != filters_.end(); ++it) {
    if ((*it)->name() == name) {
      filters_.insert(it, std::move(filter));
      return;
    }
  }
  filters_.push_back(std::move(filter));
}

ChainResult FilterChain::run_request(RequestContext& ctx) const {
  for (const auto& filter : filters_) {
    switch (filter->on_request(ctx)) {
      case FilterStatus::kContinue:
        break;
      case FilterStatus::kStopIteration:
        return ChainResult::kStopped;
      case FilterStatus::kPause:
        return ChainResult::kPaused;
    }
  }
  return ChainResult::kContinue;
}

void FilterChain::run_response(RequestContext& ctx,
                               http::HttpResponse& response) const {
  for (auto it = filters_.rbegin(); it != filters_.rend(); ++it) {
    (*it)->on_response(ctx, response);
  }
}

std::vector<std::string> FilterChain::filter_names() const {
  std::vector<std::string> names;
  names.reserve(filters_.size());
  for (const auto& filter : filters_) names.push_back(filter->name());
  return names;
}

}  // namespace meshnet::mesh
