#pragma once

// Deterministic endpoint subsetting (MESHSCALE, DESIGN.md §13).
//
// At N services x R replicas, pushing every endpoint of every cluster to
// every sidecar makes per-sidecar state — and active health-check fan-out
// — grow as O(N^2 R). Subsetting bounds it: each sidecar tracks at most
// `subset_size` endpoints per cluster, chosen by a deterministic aperture
// on a hash ring (Twitter's "deterministic aperture" idea, simplified):
//
//   * subscriber s's aperture into cluster c starts at
//     FNV(s + "|" + c) mod n and takes `subset_size` consecutive
//     endpoints (wrapping) — no coordination, stable under recompiles;
//   * a coverage-repair pass then assigns every endpoint missed by all
//     apertures to the subscriber with the smallest subset (lexicographic
//     subscriber order breaks ties), so no endpoint is unreachable
//     mesh-wide.
//
// The function is pure: same (cluster, endpoints, subscribers, size) in,
// same subsets out, on any host at any thread count. The control plane
// calls it per cluster at compile time; tests call it directly.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "cluster/service_registry.h"

namespace meshnet::mesh {

/// Operator knob carried in MeshPolicies. Disabled by default: every
/// existing experiment sees the full endpoint set, bit-identically.
struct SubsetConfig {
  bool enabled = false;
  /// Max endpoints of one cluster a single sidecar tracks (<= 0 = all).
  int subset_size = 0;
};

/// subscriber name -> sorted indices into `endpoints`. Every endpoint is
/// covered by at least one subscriber (coverage repair); every subscriber
/// gets at least min(subset_size, n) endpoints. With subset_size <= 0 or
/// >= endpoints.size(), every subscriber gets every endpoint.
std::map<std::string, std::vector<std::size_t>> compute_endpoint_subsets(
    const std::string& cluster_name,
    const std::vector<cluster::Endpoint>& endpoints,
    const std::vector<std::string>& subscribers, int subset_size);

}  // namespace meshnet::mesh
