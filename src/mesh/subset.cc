#include "mesh/subset.h"

#include <algorithm>

namespace meshnet::mesh {

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::map<std::string, std::vector<std::size_t>> compute_endpoint_subsets(
    const std::string& cluster_name,
    const std::vector<cluster::Endpoint>& endpoints,
    const std::vector<std::string>& subscribers, int subset_size) {
  std::map<std::string, std::vector<std::size_t>> subsets;
  const std::size_t n = endpoints.size();
  if (subscribers.empty()) return subsets;
  if (subset_size <= 0 || static_cast<std::size_t>(subset_size) >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (const std::string& s : subscribers) subsets[s] = all;
    return subsets;
  }
  const auto k = static_cast<std::size_t>(subset_size);

  std::vector<std::size_t> cover_count(n, 0);
  for (const std::string& s : subscribers) {
    const std::size_t start = fnv1a(s + "|" + cluster_name) % n;
    std::vector<std::size_t>& subset = subsets[s];
    subset.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t index = (start + i) % n;
      subset.push_back(index);
      ++cover_count[index];
    }
    std::sort(subset.begin(), subset.end());
  }

  // Coverage repair: an endpoint no aperture landed on goes to the
  // subscriber with the smallest subset. std::map iterates subscribers in
  // lexicographic order, which is the deterministic tie-break.
  for (std::size_t index = 0; index < n; ++index) {
    if (cover_count[index] > 0) continue;
    auto smallest = subsets.begin();
    for (auto it = std::next(subsets.begin()); it != subsets.end(); ++it) {
      if (it->second.size() < smallest->second.size()) smallest = it;
    }
    smallest->second.insert(
        std::lower_bound(smallest->second.begin(), smallest->second.end(),
                         index),
        index);
    ++cover_count[index];
  }
  return subsets;
}

}  // namespace meshnet::mesh
