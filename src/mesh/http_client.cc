#include "mesh/http_client.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace meshnet::mesh {

HttpClientPool::HttpClientPool(sim::Simulator& sim,
                               transport::TransportHost& host,
                               net::SocketAddress remote, Options options,
                               std::string name)
    : sim_(sim),
      host_(host),
      remote_(remote),
      options_(options),
      name_(std::move(name)) {}

HttpClientPool::~HttpClientPool() {
  // Abort every live connection so the transport host does not deliver
  // into freed slots.
  for (auto& slot : slots_) {
    if (slot->tls != nullptr) slot->tls->shutdown();
    if (slot->conn != nullptr && !slot->conn->closed()) {
      slot->conn->set_on_closed(nullptr);
      slot->conn->set_on_data(nullptr);
      slot->conn->abort();
    }
  }
}

HttpClientPool::RequestId HttpClientPool::request(http::HttpRequest request,
                                                  ResponseHandler handler) {
  const RequestId id = next_id_++;
  Pending pending;
  pending.id = id;
  pending.request = std::move(request);
  pending.handler = std::move(handler);
  queue_.push_back(std::move(pending));
  dispatch();
  return id;
}

bool HttpClientPool::cancel(RequestId id) {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const Pending& p) { return p.id == id; });
  if (it != queue_.end()) {
    queue_.erase(it);
    return true;
  }
  for (auto& slot : slots_) {
    if (slot->busy && slot->request_id == id) {
      // The connection's stream is now poisoned (a response may arrive for
      // a request nobody is waiting on); abort it.
      slot->handler = nullptr;
      slot->busy = false;
      --active_;
      if (slot->tls != nullptr) slot->tls->shutdown();
      if (slot->conn != nullptr) {
        slot->conn->set_on_closed(nullptr);
        slot->conn->set_on_data(nullptr);
        slot->conn->abort();
      }
      remove_slot(*slot);
      dispatch();
      return true;
    }
  }
  return false;
}

std::size_t HttpClientPool::idle_connections() const noexcept {
  std::size_t idle = 0;
  for (const auto& slot : slots_) {
    if (!slot->busy) ++idle;
  }
  return idle;
}

HttpClientPool::Slot* HttpClientPool::find_idle() {
  for (auto& slot : slots_) {
    if (!slot->busy) return slot.get();
  }
  return nullptr;
}

HttpClientPool::Slot* HttpClientPool::create_slot() {
  if (slots_.size() >= options_.max_connections) return nullptr;
  auto slot = std::make_unique<Slot>();
  Slot* raw = slot.get();
  raw->parser = std::make_unique<http::HttpParser>(http::ParserKind::kResponse);
  raw->parser->set_on_response([this, raw](http::HttpResponse response) {
    on_response(*raw, std::move(response));
  });
  transport::Connection& conn = host_.connect(remote_, options_.connection);
  raw->conn = &conn;
  transport::Connection* conn_ptr = &conn;
  if (options_.tls.enabled) {
    auto channel = std::make_shared<TlsChannel>(
        sim_, TlsChannel::Role::kClient, options_.tls.params,
        options_.tls.local_cert, options_.tls.runtime, remote_.to_string());
    raw->tls = channel;
    channel->set_send_wire([conn_ptr](std::string bytes) {
      if (!conn_ptr->closed()) conn_ptr->send(std::move(bytes));
    });
    channel->set_on_plaintext([raw](std::string_view data) {
      if (!raw->parser->feed(data)) {
        MESHNET_WARN() << "http client: response parse error";
      }
    });
    // Delivered through a zero-delay event, so aborting here is safe.
    channel->set_on_error([this, raw, conn_ptr](const std::string& reason) {
      raw->close_reason = "tls handshake failed: " + reason;
      if (!conn_ptr->closed()) {
        conn_ptr->abort();
      } else {
        on_slot_closed(conn_ptr);
      }
    });
    conn.set_on_data([channel](std::string_view data) {
      channel->on_wire_data(data);
    });
    channel->start();
  } else {
    conn.set_on_data([raw](std::string_view data) {
      if (!raw->parser->feed(data)) {
        MESHNET_WARN() << "http client: response parse error";
      }
    });
  }
  conn.set_on_closed([this, conn_ptr](bool /*graceful*/) {
    on_slot_closed(conn_ptr);
  });
  ++created_;
  slots_.push_back(std::move(slot));
  if (options_.on_connection_created) options_.on_connection_created(conn);
  return raw;
}

void HttpClientPool::assign(Slot& slot, Pending pending) {
  slot.busy = true;
  slot.request_id = pending.id;
  slot.handler = std::move(pending.handler);
  ++active_;
  if (slot.tls != nullptr) {
    slot.tls->send_app_data(http::serialize_request(pending.request));
  } else {
    slot.conn->send(http::serialize_request(pending.request));
  }
}

void HttpClientPool::dispatch() {
  if (dispatching_) return;
  dispatching_ = true;
  while (!queue_.empty()) {
    Slot* slot = find_idle();
    if (slot == nullptr) slot = create_slot();
    if (slot == nullptr) break;  // at the connection cap; stay queued
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    assign(*slot, std::move(pending));
  }
  dispatching_ = false;
}

void HttpClientPool::on_response(Slot& slot, http::HttpResponse response) {
  if (!slot.busy) {
    MESHNET_WARN() << "http client: unexpected response on idle connection";
    return;
  }
  ResponseHandler handler = std::move(slot.handler);
  slot.handler = nullptr;
  slot.busy = false;
  slot.request_id = 0;
  --active_;
  if (handler) handler(std::move(response), "");
  dispatch();
}

void HttpClientPool::on_slot_closed(transport::Connection* conn) {
  const auto it = std::find_if(
      slots_.begin(), slots_.end(),
      [&](const std::unique_ptr<Slot>& s) { return s->conn == conn; });
  if (it == slots_.end()) return;
  Slot& slot = **it;
  ResponseHandler handler;
  if (slot.busy) {
    ++failures_;
    handler = std::move(slot.handler);
    slot.busy = false;
    --active_;
  }
  std::string reason = slot.close_reason.empty() ? "upstream connection reset"
                                                 : std::move(slot.close_reason);
  if (slot.tls != nullptr) slot.tls->shutdown();
  slots_.erase(it);
  if (handler) handler(std::nullopt, std::move(reason));
  dispatch();
}

void HttpClientPool::remove_slot(const Slot& slot) {
  const auto it = std::find_if(
      slots_.begin(), slots_.end(),
      [&](const std::unique_ptr<Slot>& s) { return s.get() == &slot; });
  if (it != slots_.end()) {
    if ((*it)->tls != nullptr) (*it)->tls->shutdown();
    slots_.erase(it);
  }
}

}  // namespace meshnet::mesh
