#pragma once

// Mesh telemetry: the metric-collection function of the control plane
// (paper §2, Fig. 1 "metric collection"). Sidecars report every proxied
// request; the sink aggregates per (source service -> upstream cluster)
// edge, which is enough to reconstruct the service call graph — the
// paper's "better visibility" in its simplest form.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "sim/time.h"

namespace meshnet::mesh {

struct EdgeMetrics {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;  ///< 5xx or transport errors
  std::uint64_t retries = 0;
  stats::LogHistogram latency{7};  ///< nanoseconds
};

class TelemetrySink {
 public:
  void record_request(const std::string& source_service,
                      const std::string& upstream_cluster, int status,
                      sim::Duration latency, int retries);

  /// Aggregated metrics for one edge; nullptr if never seen.
  const EdgeMetrics* edge(const std::string& source_service,
                          const std::string& upstream_cluster) const;

  /// All (source, upstream) edges, sorted.
  std::vector<std::pair<std::string, std::string>> edges() const;

  std::uint64_t total_requests() const noexcept { return total_requests_; }
  std::uint64_t total_failures() const noexcept { return total_failures_; }

  void clear();

 private:
  std::map<std::pair<std::string, std::string>, EdgeMetrics> edges_;
  std::uint64_t total_requests_ = 0;
  std::uint64_t total_failures_ = 0;
};

}  // namespace meshnet::mesh
