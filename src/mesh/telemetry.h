#pragma once

// Mesh telemetry: the metric-collection function of the control plane
// (paper §2, Fig. 1 "metric collection"). Sidecars report every proxied
// request; the sink aggregates per (source service -> upstream cluster)
// edge, which is enough to reconstruct the service call graph — the
// paper's "better visibility" in its simplest form.
//
// The sink is a thin adapter over obs::MetricRegistry: it interns the
// per-edge / per-cluster / per-kind series once and forwards every sample
// as plain counter and histogram updates, so the unified snapshot carries
// the edge metrics next to spans, events and engine counters. Series:
//
//   mesh_requests_total                       (unlabeled grand total)
//   mesh_failures_total                       (unlabeled grand total)
//   mesh_requests_total{source,upstream}
//   mesh_failures_total{source,upstream}
//   mesh_retries_total{source,upstream}
//   mesh_request_latency_ns{source,upstream,class}
//   cluster_requests_total{cluster} / cluster_failures_total{cluster}
//   mesh_events_total{kind}
//
// It also owns the per-request access log (obs::AccessLog), which the
// sidecars feed when sampling is enabled.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mesh/filter.h"
#include "obs/access_log.h"
#include "obs/event.h"
#include "obs/metric_registry.h"
#include "stats/histogram.h"
#include "sim/time.h"

namespace meshnet::mesh {

/// One proxied request, as the sidecar reports it.
struct RequestSample {
  std::string source;    ///< caller service
  std::string upstream;  ///< upstream cluster that (should have) served it
  int status = 0;        ///< final HTTP status; <= 0 means transport error
  sim::Duration latency = 0;  ///< end-to-end through the sidecar, ns
  int retries = 0;            ///< attempts beyond the first
  TrafficClass priority = TrafficClass::kDefault;
};

/// Materialized view of one edge's series (built from the registry on
/// demand; the latency histogram is the merge of the per-class series).
struct EdgeMetrics {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;  ///< 5xx or transport errors
  std::uint64_t retries = 0;
  stats::LogHistogram latency{7};  ///< nanoseconds
};

/// A resilience state transition (breaker tripped, endpoint evicted by
/// health checking, ...) reported by a sidecar. The mesh itself emits
/// kBreaker and kHealth; the fault layer logs its injections as kFault.
struct MeshEvent {
  sim::Time at = 0;
  obs::EventKind kind = obs::EventKind::kBreaker;
  std::string subject;  ///< e.g. "frontend->reviews/reviews-v1"
  std::string detail;   ///< e.g. "closed->open", "evicted"
};

class TelemetrySink {
 public:
  /// Records into `registry` when non-null, else into a private registry
  /// (unit tests); either way `registry()` exposes it.
  explicit TelemetrySink(obs::MetricRegistry* registry = nullptr);
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  void record_request(const RequestSample& sample);

  /// Aggregated metrics for one edge; nullopt if never seen.
  std::optional<EdgeMetrics> edge(const std::string& source_service,
                                  const std::string& upstream_cluster) const;

  /// All (source, upstream) edges, sorted.
  std::vector<std::pair<std::string, std::string>> edges() const;

  std::uint64_t total_requests() const noexcept;
  std::uint64_t total_failures() const noexcept;

  /// Per-upstream-cluster availability, aggregated over all callers.
  struct Availability {
    std::uint64_t total = 0;
    std::uint64_t failures = 0;
    double success_rate() const noexcept {
      return total == 0
                 ? 1.0
                 : static_cast<double>(total - failures) /
                       static_cast<double>(total);
    }
  };
  /// nullopt if the cluster never served a request.
  std::optional<Availability> cluster_availability(
      const std::string& cluster) const;

  /// Records a resilience state transition.
  void record_event(sim::Time at, obs::EventKind kind, std::string subject,
                    std::string detail);

  const std::vector<MeshEvent>& events() const noexcept { return events_; }
  std::uint64_t event_count(obs::EventKind kind) const noexcept;

  obs::AccessLog& access_log() noexcept { return access_log_; }
  const obs::AccessLog& access_log() const noexcept { return access_log_; }

  obs::MetricRegistry& registry() noexcept { return *registry_; }
  const obs::MetricRegistry& registry() const noexcept { return *registry_; }

  /// Zeroes every series this sink feeds and forgets the edge/cluster
  /// caches, the event log and the access log. Other series in a shared
  /// registry are untouched.
  void clear();

 private:
  struct EdgeCells {
    obs::Counter* requests = nullptr;
    obs::Counter* failures = nullptr;
    obs::Counter* retries = nullptr;
    /// Lazily interned per traffic class actually seen on the edge.
    std::array<obs::Histogram*, 3> latency_by_class{};
  };
  struct ClusterCells {
    obs::Counter* requests = nullptr;
    obs::Counter* failures = nullptr;
  };

  EdgeCells& edge_cells(const std::string& source, const std::string& upstream);
  ClusterCells& cluster_cells(const std::string& cluster);
  void intern_totals();

  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_ = nullptr;

  obs::Counter* requests_total_ = nullptr;
  obs::Counter* failures_total_ = nullptr;
  std::array<obs::Counter*, obs::kEventKindCount> event_counters_{};
  std::map<std::pair<std::string, std::string>, EdgeCells> edge_cells_;
  std::map<std::string, ClusterCells> cluster_cells_;
  std::vector<MeshEvent> events_;
  obs::AccessLog access_log_;
};

}  // namespace meshnet::mesh
