#pragma once

// Mesh telemetry: the metric-collection function of the control plane
// (paper §2, Fig. 1 "metric collection"). Sidecars report every proxied
// request; the sink aggregates per (source service -> upstream cluster)
// edge, which is enough to reconstruct the service call graph — the
// paper's "better visibility" in its simplest form.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.h"
#include "stats/success_rate.h"
#include "sim/time.h"

namespace meshnet::mesh {

struct EdgeMetrics {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;  ///< 5xx or transport errors
  std::uint64_t retries = 0;
  stats::LogHistogram latency{7};  ///< nanoseconds
};

/// A resilience state transition (breaker tripped, endpoint evicted by
/// health checking, ...) reported by a sidecar. The kinds emitted by the
/// mesh itself are "breaker" and "health"; the fault layer logs its own
/// injections under "fault".
struct MeshEvent {
  sim::Time at = 0;
  std::string kind;
  std::string subject;  ///< e.g. "frontend->reviews/reviews-v1"
  std::string detail;   ///< e.g. "closed->open", "evicted"
};

class TelemetrySink {
 public:
  void record_request(const std::string& source_service,
                      const std::string& upstream_cluster, int status,
                      sim::Duration latency, int retries);

  /// Aggregated metrics for one edge; nullptr if never seen.
  const EdgeMetrics* edge(const std::string& source_service,
                          const std::string& upstream_cluster) const;

  /// All (source, upstream) edges, sorted.
  std::vector<std::pair<std::string, std::string>> edges() const;

  std::uint64_t total_requests() const noexcept { return total_requests_; }
  std::uint64_t total_failures() const noexcept { return total_failures_; }

  /// Per-upstream-cluster availability, aggregated over all callers;
  /// nullptr if the cluster never served a request.
  const stats::SuccessRateCounter* cluster_availability(
      const std::string& cluster) const;

  /// Records a resilience state transition.
  void record_event(sim::Time at, std::string kind, std::string subject,
                    std::string detail);

  const std::vector<MeshEvent>& events() const noexcept { return events_; }
  std::uint64_t event_count(std::string_view kind) const;

  void clear();

 private:
  std::map<std::pair<std::string, std::string>, EdgeMetrics> edges_;
  std::map<std::string, stats::SuccessRateCounter> availability_;
  std::vector<MeshEvent> events_;
  std::uint64_t total_requests_ = 0;
  std::uint64_t total_failures_ = 0;
};

}  // namespace meshnet::mesh
