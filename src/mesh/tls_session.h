#pragma once

// Simulated mTLS session layer for sidecar-to-sidecar transport
// (DESIGN.md §14). The simulator does not encrypt bytes; it models the
// *cost structure* of TLS 1.3 the way the MTLS report (arXiv:2411.02267)
// measures it: a full handshake spends one extra round trip on the link
// model plus asymmetric-crypto CPU at both ends (serialized per sidecar
// on the TlsRuntime's shared crypto clock — concurrent handshakes queue,
// which is what makes a mesh-wide reconnect wave a storm), a ticket
// resumption is 0-RTT early data plus a cheap key-schedule charge, and
// every application record pays a per-record + per-KiB AEAD compute
// charge on a per-direction busy-until clock (symmetric crypto
// parallelizes across worker threads, so it does not contend).
//
// The channel is deliberately decoupled from the transport: bytes go out
// through a wire sink callback and come in through on_wire_data(), so
// the state machine is drivable byte-by-byte from property tests and the
// codec fuzzer without a simulated network. The sidecar's inbound
// listener and the HTTP client pool are the only production owners —
// CI greps for constructions anywhere else.
//
// Identity rides the existing control-plane cert plumbing: the channel
// reads the owning sidecar's `identity_cert` through a stable pointer,
// so a rotation push is visible to the very next handshake without any
// pool rewiring, while established sessions keep their keys (real TLS
// does not rekey on cert rotation either). Session tickets are stateless
// and bound to the issuing cert's serial: rotation invalidates every
// outstanding ticket, which is exactly the resumption/rotation
// interaction the tests pin down.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metric_registry.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace meshnet::mesh {

/// A workload identity certificate (SPIFFE-flavoured). The simulation
/// does not encrypt bytes, but identity issuance/rotation is modelled so
/// policy has something real to hang off. Issued and rotated by the
/// control plane; delivered to sidecars inside the config push.
struct Certificate {
  std::uint64_t serial = 0;
  std::string spiffe_id;  ///< "spiffe://cluster.local/ns/default/sa/<svc>"
  sim::Time issued_at = 0;
  sim::Time expires_at = 0;

  bool valid_at(sim::Time now) const noexcept {
    return now >= issued_at && now < expires_at;
  }
};

/// Cost and policy knobs for the TLS session layer. Lives in
/// MeshPolicies (mesh-wide default, distributed in every config push)
/// and in SidecarConfig (whether *this* sidecar's inbound listener
/// accepts TLS). Defaults follow the MTLS report's measured shape:
/// multi-millisecond full handshakes dominated by asymmetric crypto,
/// tens-of-microseconds resumptions, single-digit-microsecond AEAD per
/// record.
struct TlsParams {
  /// Mesh-wide default for per-service mTLS (MeshPolicies) / whether this
  /// sidecar's inbound listener accepts TLS (SidecarConfig).
  bool enabled = false;
  /// Issue and accept session tickets (TLS 1.3 resumption).
  bool session_resumption = true;
  /// A handshake that has not established by this deadline fails cleanly
  /// (also the fuzzer's no-hang guarantee).
  sim::Duration handshake_timeout = sim::seconds(5);
  /// CPU charged by the server for a full handshake (cert signature +
  /// key exchange).
  sim::Duration handshake_cpu_server = sim::microseconds(1200);
  /// CPU charged by the client for a full handshake (signature verify +
  /// key exchange).
  sim::Duration handshake_cpu_client = sim::microseconds(900);
  /// CPU charged by either side for a ticket resumption (PSK key
  /// schedule only).
  sim::Duration handshake_cpu_resumed = sim::microseconds(60);
  /// AEAD charge per record, plus per KiB of record payload.
  sim::Duration aead_per_record = sim::microseconds(2);
  sim::Duration aead_per_kb = sim::microseconds(3);
  /// Maximum record body; larger app writes are segmented, larger
  /// received records are a protocol error (TLS 1.3's 16 KiB limit).
  std::size_t max_record_bytes = 16 * 1024;
  /// Bound on the per-sidecar client session-ticket cache (LRU).
  std::size_t session_cache_capacity = 1024;
  /// Tickets older than this are rejected (server-side check).
  sim::Duration ticket_lifetime = sim::seconds(3600);
};

// ---------------------------------------------------------------------------
// Record codec. Wire format: [type u8][length u24 BE][body]. Types follow
// TLS's content-type numbering where one exists.

enum class TlsRecordType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kFinished = 3,
  kAlert = 21,
  kAppData = 23,
};

bool is_known_tls_record_type(std::uint8_t type) noexcept;

/// Serializes one record. `body` must fit in 24 bits.
std::string encode_tls_record(TlsRecordType type, std::string_view body);

/// Incremental record deframer (same feed contract as http::HttpParser):
/// bytes in via feed(), complete records out via the handler, in order.
/// Unknown record types and oversized lengths put the parser in a sticky
/// error state and feed() returns false.
class TlsRecordParser {
 public:
  using RecordHandler =
      std::function<void(TlsRecordType, std::string_view body)>;

  explicit TlsRecordParser(std::size_t max_body_bytes);

  void set_on_record(RecordHandler handler) { on_record_ = std::move(handler); }

  /// Returns false if the parser is (or enters) the error state.
  bool feed(std::string_view data);

  bool has_error() const noexcept { return !error_.empty(); }
  const std::string& error() const noexcept { return error_; }

  void reset();

 private:
  std::size_t max_body_bytes_;
  std::string buffer_;
  std::string error_;
  RecordHandler on_record_;
};

// ---------------------------------------------------------------------------
// Handshake message bodies. Fixed-width big-endian fields; decode is
// strict (exact length, no trailing bytes) and returns nullopt on any
// malformation.

struct TlsClientHello {
  std::uint64_t cert_serial = 0;
  sim::Time cert_expires_at = 0;
  std::string ticket;  ///< empty = no resumption attempt
};

struct TlsServerHello {
  std::uint64_t cert_serial = 0;
  sim::Time cert_expires_at = 0;
  bool resumed = false;
  std::string ticket;  ///< fresh ticket for the next connection; may be empty
};

/// Stateless session ticket: the server keeps nothing, validity is
/// checked against the *current* identity cert serial and the ticket
/// lifetime. Encodes to exactly 24 bytes.
struct TlsSessionTicket {
  std::uint64_t cert_serial = 0;
  sim::Time issued_at = 0;
  std::uint64_t nonce = 0;
};

std::string encode_client_hello(const TlsClientHello& hello);
std::optional<TlsClientHello> decode_client_hello(std::string_view body);
std::string encode_server_hello(const TlsServerHello& hello);
std::optional<TlsServerHello> decode_server_hello(std::string_view body);
std::string encode_session_ticket(const TlsSessionTicket& ticket);
std::optional<TlsSessionTicket> decode_session_ticket(std::string_view body);

// ---------------------------------------------------------------------------

/// Interned tls_* series (created on first TLS use, so meshes that never
/// enable mTLS keep byte-identical metric snapshots).
struct TlsMetrics {
  obs::Counter* handshakes_full = nullptr;
  obs::Counter* handshakes_resumed = nullptr;
  obs::Counter* handshake_failures = nullptr;
  obs::Counter* tickets_issued = nullptr;
  obs::Counter* resumptions_rejected = nullptr;
  obs::Counter* session_cache_evictions = nullptr;
  obs::Counter* records_encrypted = nullptr;
  obs::Counter* records_decrypted = nullptr;
  obs::Counter* bytes_encrypted = nullptr;
  obs::Counter* bytes_decrypted = nullptr;
  obs::Counter* alerts_sent = nullptr;
  obs::Histogram* handshake_ns = nullptr;
};

/// Bounded LRU of session tickets, keyed by the remote "ip:port". One
/// per sidecar (client side); capacity comes from
/// TlsParams::session_cache_capacity and evictions are counted.
class TlsSessionCache {
 public:
  explicit TlsSessionCache(std::size_t capacity,
                           obs::Counter* evictions = nullptr)
      : capacity_(capacity), evictions_(evictions) {}

  /// Stores (or refreshes) a ticket, evicting the least recently used
  /// entry when over capacity. Capacity 0 stores nothing.
  void put(const std::string& key, std::string ticket);

  /// Returns the cached ticket (refreshing recency) or "" when absent.
  std::string get(const std::string& key);

  bool contains(const std::string& key) const {
    return index_.find(key) != index_.end();
  }
  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Shrinks (evicting LRU entries) or grows the bound in place — a
  /// config push may retune it mid-run.
  void set_capacity(std::size_t capacity);

 private:
  void evict_to_capacity();

  std::size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<std::string, std::string>> lru_;
  std::map<std::string,
           std::list<std::pair<std::string, std::string>>::iterator,
           std::less<>>
      index_;
  obs::Counter* evictions_ = nullptr;
};

/// Per-sidecar TLS state shared by every channel the sidecar owns: the
/// interned tls_* series, the client ticket cache, and the ticket nonce
/// counter. Created lazily by the sidecar the first time TLS is actually
/// used; `registry` may be null (tests without telemetry), in which case
/// the series intern into a private registry so channel code never
/// branches.
class TlsRuntime {
 public:
  TlsRuntime(obs::MetricRegistry* registry, std::size_t cache_capacity);

  TlsMetrics& metrics() noexcept { return metrics_; }
  TlsSessionCache& session_cache() noexcept { return cache_; }
  std::uint64_t next_ticket_nonce() noexcept { return ++ticket_nonce_; }

  /// Serializes one asymmetric-crypto handshake job of `cost` on this
  /// runtime's owner: one sidecar has one crypto core, so concurrent
  /// handshakes queue behind each other. Returns the job's completion
  /// time (>= now + cost). AEAD record crypto deliberately does NOT go
  /// through this clock — symmetric crypto parallelizes across worker
  /// threads; the expensive asymmetric ops are what turn a mesh-wide
  /// reconnect wave into a handshake storm.
  sim::Time charge_handshake(sim::Time now, sim::Duration cost) {
    crypto_busy_until_ = std::max(now, crypto_busy_until_) + cost;
    return crypto_busy_until_;
  }

 private:
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  TlsMetrics metrics_;
  TlsSessionCache cache_;
  std::uint64_t ticket_nonce_ = 0;
  sim::Time crypto_busy_until_ = 0;
};

/// One TLS session endpoint. Owns the handshake state machine, the
/// record deframer, the AEAD/handshake cost accounting, and (client
/// side) the resumption attempt. Transport-agnostic: the owner supplies
/// a wire sink and feeds received bytes in; plaintext comes out of
/// set_on_plaintext in order.
///
/// Lifetime: always held in a std::shared_ptr (cost charging defers
/// delivery through simulator events that keep the channel alive);
/// owners call shutdown() when the underlying connection goes away.
class TlsChannel : public std::enable_shared_from_this<TlsChannel> {
 public:
  enum class Role : std::uint8_t { kClient, kServer };

  enum class State : std::uint8_t {
    kIdle,             ///< client: created, start() not yet called
    kWaitServerHello,  ///< client: ClientHello sent
    kWaitClientHello,  ///< server: created, nothing received
    kWaitFinished,     ///< server: full handshake, ServerHello sent
    kEstablished,
    kFailed,
  };

  using WireSink = std::function<void(std::string)>;
  using PlaintextHandler = std::function<void(std::string_view)>;
  using EstablishedHandler = std::function<void(bool resumed)>;
  using ErrorHandler = std::function<void(const std::string&)>;
  using StateObserver = std::function<void(State)>;

  /// `params` and `local_cert` must outlive the channel (both point into
  /// the owning sidecar's running config). `peer_key` identifies the
  /// remote for the ticket cache ("ip:port"); servers may pass "".
  TlsChannel(sim::Simulator& sim, Role role, const TlsParams* params,
             const Certificate* local_cert, TlsRuntime* runtime,
             std::string peer_key);
  ~TlsChannel();
  TlsChannel(const TlsChannel&) = delete;
  TlsChannel& operator=(const TlsChannel&) = delete;

  void set_send_wire(WireSink sink) { send_wire_ = std::move(sink); }
  void set_on_plaintext(PlaintextHandler h) { on_plaintext_ = std::move(h); }
  void set_on_established(EstablishedHandler h) {
    on_established_ = std::move(h);
  }
  /// Delivered through a zero-delay event (never re-entrantly from
  /// inside a transport callback), once at most.
  void set_on_error(ErrorHandler h) { on_error_ = std::move(h); }
  /// Test hook: observes every state transition, in order.
  void set_state_observer(StateObserver h) { state_observer_ = std::move(h); }

  /// Client: sends the ClientHello (attaching a cached ticket when
  /// resumption is on) and arms the handshake timer. Server: arms the
  /// handshake timer. Call exactly once, after the sinks are wired.
  void start();

  /// Feed bytes received from the wire.
  void on_wire_data(std::string_view data);

  /// Queue plaintext for the peer. Client side before establishment:
  /// sent as 0-RTT early data when a ticket was offered, buffered until
  /// the handshake completes otherwise.
  void send_app_data(std::string data);

  /// Detaches the channel from its owner: cancels timers, drops pending
  /// deliveries, and suppresses every callback. Idempotent.
  void shutdown();

  State state() const noexcept { return state_; }
  bool established() const noexcept { return state_ == State::kEstablished; }
  bool failed() const noexcept { return state_ == State::kFailed; }
  /// Established via ticket resumption.
  bool resumed() const noexcept { return resumed_; }
  const std::string& error() const noexcept { return error_; }
  Role role() const noexcept { return role_; }

 private:
  void transition(State next);
  void fail(const std::string& reason, bool send_alert);
  void on_record(TlsRecordType type, std::string_view body);
  void handle_client_hello(std::string_view body);
  void handle_server_hello(std::string_view body);
  void handle_finished();
  void handle_app_data(std::string_view body);
  void become_established();
  void encrypt_and_send(std::string data);
  void deliver_plaintext(std::string body);
  /// AEAD charge for one record of `body_bytes` payload.
  sim::Duration aead_cost(std::size_t body_bytes) const;
  /// Serializes `bytes` onto the wire after `cost` of compute, behind
  /// everything already queued in the send direction. Handshake CPU
  /// (`handshake_cpu`) additionally contends on the runtime's shared
  /// crypto clock (see TlsRuntime::charge_handshake).
  void queue_wire(std::string bytes, sim::Duration cost,
                  bool handshake_cpu = false);
  void cancel_timeout();

  sim::Simulator& sim_;
  Role role_;
  const TlsParams* params_;
  const Certificate* local_cert_;
  TlsRuntime* runtime_;
  std::string peer_key_;

  State state_;
  bool closed_ = false;
  bool resumed_ = false;
  bool offered_ticket_ = false;
  std::string error_;
  sim::Time handshake_start_ = 0;
  sim::EventId timeout_timer_ = sim::kInvalidEventId;

  /// Per-direction compute clocks: work is serialized behind what is
  /// already queued, never reordered.
  sim::Time tx_busy_until_ = 0;
  sim::Time rx_busy_until_ = 0;

  TlsRecordParser record_parser_;
  /// Client: plaintext queued while a full handshake is in flight.
  std::list<std::string> pending_app_;
  /// Server: early-data records received before the handshake finished
  /// (a rejected-ticket client has 0-RTT data already in flight; it is
  /// processed after Finished instead of being replayed).
  std::list<std::string> early_records_;

  WireSink send_wire_;
  PlaintextHandler on_plaintext_;
  EstablishedHandler on_established_;
  ErrorHandler on_error_;
  StateObserver state_observer_;
};

std::string_view tls_state_name(TlsChannel::State state) noexcept;

}  // namespace meshnet::mesh
