#pragma once

// Active health checking (Envoy's health_checks, simplified).
//
// Each sidecar probes the endpoints of its upstream clusters on a fixed
// interval over dedicated probe connections (never the data-path pools).
// The probe is an HTTP GET against a path the *remote sidecar* answers
// locally, before its filter chain — so authorization policy cannot 403 a
// probe, and a crashed pod (whose sidecar died with it) fails probes by
// timing out. `unhealthy_threshold` consecutive failures evict the
// endpoint from load balancing; `healthy_threshold` consecutive passes
// re-admit it. Endpoint selection falls back to the full set when every
// endpoint is evicted (panic routing), so health checking can only ever
// narrow choice, never wedge a cluster.
//
// This is the fast path for fault detection: the registry/control-plane
// path (an endpoint being deregistered) models the slow k8s
// node-controller timeline, while probes react within a few intervals.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "mesh/http_client.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace meshnet::mesh {

/// Path answered by the sidecar itself on the inbound listener.
inline constexpr std::string_view kHealthCheckPath = "/__meshnet/health";

struct HealthCheckConfig {
  bool enabled = false;
  sim::Duration interval = sim::milliseconds(500);
  sim::Duration timeout = sim::milliseconds(250);
  /// Consecutive probe failures that evict an endpoint.
  std::uint32_t unhealthy_threshold = 2;
  /// Consecutive probe passes that re-admit an evicted endpoint.
  std::uint32_t healthy_threshold = 2;
  std::string path = std::string(kHealthCheckPath);
  /// Flap damping (Envoy's outlier ejection meets BGP route damping).
  /// When an endpoint crosses the healthy boundary `flap_max_transitions`
  /// times inside `flap_window`, readmission is suppressed for
  /// `flap_penalty` — a churn storm keeps the endpoint evicted instead of
  /// thrashing the routing tables. 0 disables damping (the default).
  std::uint32_t flap_max_transitions = 0;
  sim::Duration flap_window = sim::seconds(10);
  sim::Duration flap_penalty = sim::seconds(5);
};

struct HealthCheckerStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_failed = 0;     ///< non-200, transport error, timeout
  std::uint64_t probes_timed_out = 0;  ///< subset of probes_failed
  std::uint64_t evictions = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t flap_damps = 0;  ///< readmissions suppressed by damping
};

class HealthChecker {
 public:
  /// Fires on every eviction (healthy=false) and re-admission (true).
  using TransitionHook = std::function<void(
      const std::string& cluster, const std::string& pod, bool healthy,
      sim::Time at)>;

  HealthChecker(sim::Simulator& sim, transport::TransportHost& host,
                std::string owner, std::uint64_t seed);
  ~HealthChecker();
  HealthChecker(const HealthChecker&) = delete;
  HealthChecker& operator=(const HealthChecker&) = delete;

  /// Reconciles the probe set for one cluster against a config push.
  /// Existing targets keep their state (health, streaks); new endpoints
  /// start healthy with a staggered first probe; vanished endpoints (or
  /// the whole cluster, when disabled) stop being probed. Probes go to
  /// `probe_port` on each endpoint's IP (the remote inbound listener).
  void update_targets(const std::string& cluster,
                      const HealthCheckConfig& config,
                      const std::vector<cluster::Endpoint>& endpoints,
                      net::Port probe_port);

  /// Drops every target whose cluster is not in `clusters` (config pushes
  /// can remove whole clusters).
  void retain_clusters(const std::vector<std::string>& clusters);

  /// Unknown endpoints are presumed healthy (no probe history yet).
  bool healthy(const std::string& cluster, const std::string& pod) const;

  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }
  const HealthCheckerStats& stats() const noexcept { return stats_; }
  std::size_t target_count() const noexcept { return targets_.size(); }

 private:
  using Key = std::pair<std::string, std::string>;  ///< (cluster, pod)

  struct Target {
    std::string cluster;
    std::string pod;
    net::IpAddress ip = 0;
    net::Port port = 0;
    HealthCheckConfig config;
    bool healthy = true;
    std::uint32_t fails = 0;
    std::uint32_t passes = 0;
    /// Recent healthy-boundary crossings, pruned to `flap_window`.
    std::vector<sim::Time> transitions;
    sim::Time damped_until = 0;  ///< readmission suppressed before this
    std::uint64_t seq = 0;  ///< guards stale probe callbacks
    sim::EventId next_probe = sim::kInvalidEventId;
    sim::EventId timeout_timer = sim::kInvalidEventId;
    std::unique_ptr<HttpClientPool> pool;
    HttpClientPool::RequestId inflight = 0;
  };

  void detach(Target& target);
  /// Records a healthy-boundary crossing; arms the damping penalty when
  /// the crossing rate exceeds the configured flap budget.
  void note_transition(Target& target);
  void schedule_probe(const Key& key, sim::Duration delay);
  void run_probe(const Key& key);
  void handle_result(const Key& key, std::uint64_t seq, bool ok);

  sim::Simulator& sim_;
  transport::TransportHost& host_;
  std::string owner_;
  sim::RngStream rng_;
  std::map<Key, std::unique_ptr<Target>> targets_;
  TransitionHook hook_;
  HealthCheckerStats stats_;
};

}  // namespace meshnet::mesh
