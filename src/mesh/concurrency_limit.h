#pragma once

// Adaptive concurrency limiting for the admission controller.
//
// The limit follows the AIMD discipline of Netflix's concurrency-limits
// (Gradient2-flavoured, simplified): observed latency is averaged over a
// sampling window and compared against a baseline — the minimum of the
// last `baseline_windows` window means, i.e. the service's least-loaded
// recent latency. When the gradient (window mean / baseline) exceeds
// `latency_tolerance` the limit is cut multiplicatively; otherwise, if
// the window actually pressed against the limit, it grows additively.
// Growth requires pressure so an idle service does not drift to max and
// then admit a thundering herd.
//
// The class is deliberately simulator-free: `now` is passed in
// explicitly, so the model-based property test can drive it (and the
// AdmissionController above it) as a pure state machine.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace meshnet::mesh {

struct ConcurrencyLimitConfig {
  std::uint32_t initial_limit = 8;
  std::uint32_t min_limit = 1;
  std::uint32_t max_limit = 64;
  /// Latency-sampling window; the limit is reconsidered once per window.
  sim::Duration window = sim::milliseconds(250);
  /// Windows with fewer samples are discarded (too noisy to act on).
  std::uint32_t min_window_samples = 5;
  /// Multiplicative-decrease trigger: window mean > tolerance * baseline.
  double latency_tolerance = 2.0;
  double additive_increase = 1.0;
  double multiplicative_decrease = 0.7;
  /// Baseline = min of the last N window means (windowed min filter).
  std::uint32_t baseline_windows = 8;
  /// EWMA weight of the latest completion in `latency_estimate()`.
  double estimate_alpha = 0.3;
};

class ConcurrencyLimit {
 public:
  explicit ConcurrencyLimit(ConcurrencyLimitConfig config = {});

  /// Current limit (changes only inside on_complete()).
  std::uint32_t limit() const noexcept { return limit_; }
  std::uint32_t in_flight() const noexcept { return in_flight_; }
  bool has_capacity() const noexcept { return in_flight_ < limit_; }

  /// Claims a slot. Caller must have checked has_capacity().
  void on_start() noexcept;

  /// Releases a slot and feeds the AIMD sampler.
  void on_complete(sim::Duration latency, sim::Time now);

  /// EWMA of observed completion latency, for deadline-aware shedding.
  /// 0 until the first completion.
  sim::Duration latency_estimate() const noexcept { return estimate_; }

  std::uint64_t increases() const noexcept { return increases_; }
  std::uint64_t decreases() const noexcept { return decreases_; }

  /// Invoked with the new limit after every AIMD adjustment (metrics).
  void set_on_limit_change(std::function<void(std::uint32_t)> hook) {
    on_limit_change_ = std::move(hook);
  }

 private:
  void close_window(sim::Time now);

  ConcurrencyLimitConfig config_;
  std::uint32_t limit_;
  double limit_f_;  ///< fractional limit, so +1.0 AI survives rounding
  std::uint32_t in_flight_ = 0;
  /// Did in-flight reach the limit at any point during this window?
  bool limit_hit_ = false;

  sim::Time window_start_ = 0;
  sim::Duration window_sum_ = 0;
  std::uint32_t window_samples_ = 0;

  /// Ring of recent window means (the baseline min filter).
  std::vector<sim::Duration> recent_means_;
  std::size_t recent_next_ = 0;

  sim::Duration estimate_ = 0;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;
  std::function<void(std::uint32_t)> on_limit_change_;
};

}  // namespace meshnet::mesh
