#include "mesh/tracing.h"

#include <algorithm>
#include <cstdio>

namespace meshnet::mesh {

TraceContext TraceContext::extract(const http::HeaderMap& headers) {
  TraceContext ctx;
  ctx.trace_id = headers.get_or(http::headers::Id::kTraceId, "");
  ctx.span_id = headers.get_or(http::headers::Id::kSpanId, "");
  return ctx;
}

void TraceContext::inject(http::HeaderMap& headers,
                          const std::string& parent_span_id) const {
  headers.set(http::headers::Id::kTraceId, trace_id);
  headers.set(http::headers::Id::kSpanId, span_id);
  if (!parent_span_id.empty()) {
    headers.set(http::headers::Id::kParentSpanId, parent_span_id);
  }
}

std::string Tracer::next_id(std::string_view prefix) {
  ++counter_;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*s-%016llx",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<unsigned long long>(counter_));
  return buf;
}

Span Tracer::start_span(const std::string& service,
                        const std::string& operation,
                        const TraceContext& parent, sim::Time now) {
  Span span;
  span.trace_id = parent.valid() ? parent.trace_id : next_id("trace");
  span.parent_span_id = parent.valid() ? parent.span_id : "";
  span.span_id = next_id("span");
  span.service = service;
  span.operation = operation;
  span.start = now;
  return span;
}

void Tracer::finish_span(Span span, sim::Time now) {
  span.end = now;
  exporter_.export_span(std::move(span));
}

std::vector<const Span*> Tracer::trace(const std::string& trace_id) const {
  std::vector<const Span*> out;
  for (const Span& span : exporter_.spans()) {
    if (span.trace_id == trace_id) out.push_back(&span);
  }
  std::sort(out.begin(), out.end(), [](const Span* a, const Span* b) {
    return a->start < b->start;
  });
  return out;
}

}  // namespace meshnet::mesh
