#include "mesh/telemetry.h"

namespace meshnet::mesh {

void TelemetrySink::record_request(const std::string& source_service,
                                   const std::string& upstream_cluster,
                                   int status, sim::Duration latency,
                                   int retries) {
  EdgeMetrics& edge = edges_[{source_service, upstream_cluster}];
  ++edge.requests;
  ++total_requests_;
  const bool failed = status >= 500 || status <= 0;
  if (failed) {
    ++edge.failures;
    ++total_failures_;
  }
  availability_[upstream_cluster].record(!failed);
  edge.retries += static_cast<std::uint64_t>(retries < 0 ? 0 : retries);
  if (latency > 0) {
    edge.latency.record(static_cast<std::uint64_t>(latency));
  }
}

const EdgeMetrics* TelemetrySink::edge(
    const std::string& source_service,
    const std::string& upstream_cluster) const {
  const auto it = edges_.find({source_service, upstream_cluster});
  return it == edges_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, std::string>> TelemetrySink::edges()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(edges_.size());
  for (const auto& [key, metrics] : edges_) out.push_back(key);
  return out;
}

const stats::SuccessRateCounter* TelemetrySink::cluster_availability(
    const std::string& cluster) const {
  const auto it = availability_.find(cluster);
  return it == availability_.end() ? nullptr : &it->second;
}

void TelemetrySink::record_event(sim::Time at, std::string kind,
                                 std::string subject, std::string detail) {
  events_.push_back(MeshEvent{at, std::move(kind), std::move(subject),
                              std::move(detail)});
}

std::uint64_t TelemetrySink::event_count(std::string_view kind) const {
  std::uint64_t n = 0;
  for (const MeshEvent& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

void TelemetrySink::clear() {
  edges_.clear();
  availability_.clear();
  events_.clear();
  total_requests_ = 0;
  total_failures_ = 0;
}

}  // namespace meshnet::mesh
