#include "mesh/telemetry.h"

#include <utility>

namespace meshnet::mesh {

namespace {

bool is_failure(int status) noexcept { return status >= 500 || status <= 0; }

std::size_t class_index(TrafficClass c) noexcept {
  return static_cast<std::size_t>(c);
}

}  // namespace

TelemetrySink::TelemetrySink(obs::MetricRegistry* registry)
    : owned_registry_(registry ? nullptr
                               : std::make_unique<obs::MetricRegistry>()),
      registry_(registry ? registry : owned_registry_.get()),
      access_log_(registry_) {
  intern_totals();
}

void TelemetrySink::intern_totals() {
  requests_total_ = &registry_->counter("mesh_requests_total");
  failures_total_ = &registry_->counter("mesh_failures_total");
  // Eagerly interned so every snapshot carries the three event series,
  // zero-valued when a run saw no resilience activity — consumers can
  // rely on their presence.
  for (int i = 0; i < obs::kEventKindCount; ++i) {
    const auto kind = static_cast<obs::EventKind>(i);
    event_counters_[static_cast<std::size_t>(i)] = &registry_->counter(
        "mesh_events_total", {{"kind", std::string(obs::to_string(kind))}});
  }
}

TelemetrySink::EdgeCells& TelemetrySink::edge_cells(
    const std::string& source, const std::string& upstream) {
  const auto it = edge_cells_.find({source, upstream});
  if (it != edge_cells_.end()) return it->second;
  const obs::Labels labels = {{"source", source}, {"upstream", upstream}};
  EdgeCells cells;
  cells.requests = &registry_->counter("mesh_requests_total", labels);
  cells.failures = &registry_->counter("mesh_failures_total", labels);
  cells.retries = &registry_->counter("mesh_retries_total", labels);
  return edge_cells_.emplace(std::make_pair(source, upstream), cells)
      .first->second;
}

TelemetrySink::ClusterCells& TelemetrySink::cluster_cells(
    const std::string& cluster) {
  const auto it = cluster_cells_.find(cluster);
  if (it != cluster_cells_.end()) return it->second;
  const obs::Labels labels = {{"cluster", cluster}};
  ClusterCells cells;
  cells.requests = &registry_->counter("cluster_requests_total", labels);
  cells.failures = &registry_->counter("cluster_failures_total", labels);
  return cluster_cells_.emplace(cluster, cells).first->second;
}

void TelemetrySink::record_request(const RequestSample& sample) {
  EdgeCells& edge = edge_cells(sample.source, sample.upstream);
  ClusterCells& cluster = cluster_cells(sample.upstream);

  edge.requests->inc();
  cluster.requests->inc();
  requests_total_->inc();
  if (is_failure(sample.status)) {
    edge.failures->inc();
    cluster.failures->inc();
    failures_total_->inc();
  }
  if (sample.retries > 0) {
    edge.retries->inc(static_cast<std::uint64_t>(sample.retries));
  }
  if (sample.latency > 0) {
    const std::size_t idx = class_index(sample.priority);
    obs::Histogram*& cell = edge.latency_by_class[idx];
    if (!cell) {
      cell = &registry_->histogram(
          "mesh_request_latency_ns",
          {{"source", sample.source},
           {"upstream", sample.upstream},
           {"class", std::string(traffic_class_name(sample.priority))}});
    }
    cell->record(static_cast<std::uint64_t>(sample.latency));
  }
}

std::optional<EdgeMetrics> TelemetrySink::edge(
    const std::string& source_service,
    const std::string& upstream_cluster) const {
  const auto it = edge_cells_.find({source_service, upstream_cluster});
  if (it == edge_cells_.end()) return std::nullopt;
  const EdgeCells& cells = it->second;
  EdgeMetrics out;
  out.requests = cells.requests->value();
  out.failures = cells.failures->value();
  out.retries = cells.retries->value();
  for (const obs::Histogram* cell : cells.latency_by_class) {
    if (cell) out.latency.merge(cell->data());
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> TelemetrySink::edges()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(edge_cells_.size());
  for (const auto& [key, cells] : edge_cells_) out.push_back(key);
  return out;
}

std::uint64_t TelemetrySink::total_requests() const noexcept {
  return requests_total_->value();
}

std::uint64_t TelemetrySink::total_failures() const noexcept {
  return failures_total_->value();
}

std::optional<TelemetrySink::Availability>
TelemetrySink::cluster_availability(const std::string& cluster) const {
  const auto it = cluster_cells_.find(cluster);
  if (it == cluster_cells_.end()) return std::nullopt;
  Availability out;
  out.total = it->second.requests->value();
  out.failures = it->second.failures->value();
  return out;
}

void TelemetrySink::record_event(sim::Time at, obs::EventKind kind,
                                 std::string subject, std::string detail) {
  event_counters_[static_cast<std::size_t>(kind)]->inc();
  events_.push_back(
      MeshEvent{at, kind, std::move(subject), std::move(detail)});
}

std::uint64_t TelemetrySink::event_count(obs::EventKind kind) const noexcept {
  return event_counters_[static_cast<std::size_t>(kind)]->value();
}

void TelemetrySink::clear() {
  for (auto& [key, cells] : edge_cells_) {
    cells.requests->reset();
    cells.failures->reset();
    cells.retries->reset();
    for (obs::Histogram* cell : cells.latency_by_class) {
      if (cell) cell->reset();
    }
  }
  for (auto& [key, cells] : cluster_cells_) {
    cells.requests->reset();
    cells.failures->reset();
  }
  edge_cells_.clear();
  cluster_cells_.clear();
  requests_total_->reset();
  failures_total_->reset();
  for (obs::Counter* counter : event_counters_) counter->reset();
  events_.clear();
  access_log_.clear();
}

}  // namespace meshnet::mesh
