#pragma once

// Per-endpoint circuit breaker / outlier detection (paper §2: "resilience,
// such as ... implementing a 'circuit breaker' pattern to avoid
// underperforming instances").
//
// Classic three-state machine: CLOSED counts consecutive failures; at the
// threshold it OPENs for a cooldown during which the endpoint is skipped
// by endpoint selection; after cooldown it goes HALF-OPEN and admits a
// limited number of probe requests — a probe success closes the circuit,
// a probe failure re-opens it.

#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.h"

namespace meshnet::mesh {

struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker. 0 disables it.
  std::uint32_t consecutive_failures = 5;
  sim::Duration open_duration = sim::milliseconds(500);
  std::uint32_t half_open_probes = 1;
};

enum class CircuitState { kClosed, kOpen, kHalfOpen };

std::string_view circuit_state_name(CircuitState state) noexcept;

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// True when a request may be sent at `now`. Transitions kOpen ->
  /// kHalfOpen when the cooldown has elapsed. In kHalfOpen, admits up to
  /// `half_open_probes` in-flight probes.
  bool allow_request(sim::Time now);

  void on_success(sim::Time now);
  void on_failure(sim::Time now);

  CircuitState state() const noexcept { return state_; }
  std::uint32_t consecutive_failures() const noexcept { return failures_; }
  std::uint64_t times_opened() const noexcept { return times_opened_; }

  /// Observes every state transition (telemetry wiring). Fires after the
  /// new state is in effect.
  using TransitionHook =
      std::function<void(CircuitState from, CircuitState to, sim::Time at)>;
  void set_transition_hook(TransitionHook hook) {
    transition_hook_ = std::move(hook);
  }

 private:
  void open(sim::Time now);
  void transition(CircuitState to, sim::Time at);

  CircuitBreakerConfig config_;
  CircuitState state_ = CircuitState::kClosed;
  std::uint32_t failures_ = 0;
  std::uint32_t probes_in_flight_ = 0;
  sim::Time opened_at_ = 0;
  std::uint64_t times_opened_ = 0;
  TransitionHook transition_hook_;
};

}  // namespace meshnet::mesh
