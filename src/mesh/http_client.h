#pragma once

// An HTTP/1.1 client connection pool over the simulated transport.
//
// One pool fronts one remote (ip, port) with one transport configuration
// (congestion controller + DSCP mark). The sidecar keys pools by
// (endpoint, traffic class), so latency-sensitive and scavenger requests
// ride *separate* transport connections — a prerequisite for per-class
// congestion control and packet marking (paper §4.2 b/c/d).
//
// HTTP/1.1 allows one outstanding request per connection; the pool grows
// up to max_connections and queues beyond that.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "http/codec.h"
#include "http/message.h"
#include "mesh/tls_session.h"
#include "net/address.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace meshnet::mesh {

class HttpClientPool {
 public:
  /// Client-side mTLS: when enabled, every connection the pool opens
  /// runs a TlsChannel handshake (resuming from the runtime's ticket
  /// cache when possible) and requests/responses ride encrypted
  /// records. `params` and `local_cert` point into the owning sidecar's
  /// running config so a rotation push reaches the next handshake
  /// without rewiring the pool.
  struct TlsClientOptions {
    bool enabled = false;
    const TlsParams* params = nullptr;
    const Certificate* local_cert = nullptr;
    TlsRuntime* runtime = nullptr;
  };

  struct Options {
    transport::ConnectionOptions connection;
    std::size_t max_connections = 64;
    /// Invoked whenever the pool opens a fresh transport connection
    /// (used by the cross-layer SDN coordinator to advertise flows).
    std::function<void(transport::Connection&)> on_connection_created;
    TlsClientOptions tls;
  };

  /// On success: (response, ""). On transport failure: (nullopt, reason).
  using ResponseHandler =
      std::function<void(std::optional<http::HttpResponse>, std::string)>;

  using RequestId = std::uint64_t;

  HttpClientPool(sim::Simulator& sim, transport::TransportHost& host,
                 net::SocketAddress remote, Options options,
                 std::string name = {});
  ~HttpClientPool();
  HttpClientPool(const HttpClientPool&) = delete;
  HttpClientPool& operator=(const HttpClientPool&) = delete;

  /// Issues a request; the handler fires exactly once unless the request
  /// is cancelled first.
  RequestId request(http::HttpRequest request, ResponseHandler handler);

  /// Cancels a queued or in-flight request. An in-flight cancel aborts
  /// the underlying connection (the response can no longer be matched).
  /// The handler is NOT called. Returns true if the request was found.
  bool cancel(RequestId id);

  const net::SocketAddress& remote() const noexcept { return remote_; }
  std::size_t active_requests() const noexcept { return active_; }
  std::size_t idle_connections() const noexcept;
  std::size_t queued_requests() const noexcept { return queue_.size(); }
  std::uint64_t connections_created() const noexcept { return created_; }
  std::uint64_t transport_failures() const noexcept { return failures_; }

  /// Mutable so cross-layer policy can retarget future connections
  /// (existing connections keep their class).
  Options& options() noexcept { return options_; }

 private:
  struct Slot {
    transport::Connection* conn = nullptr;
    std::unique_ptr<http::HttpParser> parser;
    std::shared_ptr<TlsChannel> tls;
    /// Failure detail for the handler when the slot dies (e.g. a TLS
    /// handshake error); empty means the generic connection reset.
    std::string close_reason;
    bool busy = false;
    RequestId request_id = 0;
    ResponseHandler handler;
  };

  struct Pending {
    RequestId id;
    http::HttpRequest request;
    ResponseHandler handler;
  };

  void dispatch();
  Slot* find_idle();
  Slot* create_slot();
  void assign(Slot& slot, Pending pending);
  void on_response(Slot& slot, http::HttpResponse response);
  void on_slot_closed(transport::Connection* conn);
  void remove_slot(const Slot& slot);

  sim::Simulator& sim_;
  transport::TransportHost& host_;
  net::SocketAddress remote_;
  Options options_;
  std::string name_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::deque<Pending> queue_;
  RequestId next_id_ = 1;
  std::size_t active_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t failures_ = 0;
  bool dispatching_ = false;
};

}  // namespace meshnet::mesh
