#include "mesh/config_delta.h"

namespace meshnet::mesh {

namespace {

std::size_t string_bytes(const std::string& s) { return s.size() + 4; }

std::size_t endpoint_bytes(const cluster::Endpoint& ep) {
  std::size_t bytes = string_bytes(ep.pod_name) + 6;  // ip + port
  for (const auto& [k, v] : ep.labels) {
    bytes += string_bytes(k) + string_bytes(v);
  }
  return bytes;
}

std::size_t cluster_spec_bytes(const ClusterSpec& spec) {
  // lb + breaker + subset_fallback + health-check block, fixed-size.
  std::size_t bytes = string_bytes(spec.name) + 48 +
                      string_bytes(spec.health_check.path);
  for (const cluster::Endpoint& ep : spec.endpoints) {
    bytes += endpoint_bytes(ep);
  }
  return bytes;
}

std::size_t policy_section_bytes(const SidecarConfig& config) {
  // retry + timeouts + admission + class policies + transport + proxy
  // overhead knobs: fixed-size scalar fields.
  std::size_t bytes = 160 + string_bytes(config.service_name) +
                      string_bytes(config.identity_cert.spiffe_id);
  for (const auto& [svc, sources] : config.authorization) {
    bytes += string_bytes(svc);
    for (const std::string& s : sources) bytes += string_bytes(s);
  }
  bytes += config.class_policies.size() * 6;
  return bytes;
}

}  // namespace

ConfigDelta make_config_delta(const SidecarConfig& base,
                              const SidecarConfig& target) {
  ConfigDelta delta;
  delta.epoch = target.epoch;
  delta.base_hash = hash_sidecar_config(base);
  delta.target_hash = hash_sidecar_config(target);

  if (hash_policy_section(base) != hash_policy_section(target)) {
    delta.policy_changed = true;
    delta.policy = target;
    delta.policy.clusters.clear();
    delta.policy.routes.clear();
  }

  for (const auto& [name, spec] : target.clusters) {
    const auto it = base.clusters.find(name);
    if (it == base.clusters.end() ||
        hash_cluster_spec(it->second) != hash_cluster_spec(spec)) {
      delta.cluster_upserts.emplace(name, spec);
    }
  }
  for (const auto& [name, spec] : base.clusters) {
    if (!target.clusters.contains(name)) delta.cluster_removals.push_back(name);
  }

  for (const auto& [host, cluster] : target.routes) {
    const auto it = base.routes.find(host);
    if (it == base.routes.end() || it->second != cluster) {
      delta.route_upserts.emplace(host, cluster);
    }
  }
  for (const auto& [host, cluster] : base.routes) {
    if (!target.routes.contains(host)) delta.route_removals.push_back(host);
  }
  return delta;
}

SidecarConfig apply_config_delta(const SidecarConfig& base,
                                 const ConfigDelta& delta) {
  SidecarConfig out;
  if (delta.policy_changed) {
    out = delta.policy;
    out.routes = base.routes;
    out.clusters = base.clusters;
  } else {
    out = base;
  }
  out.epoch = delta.epoch;
  for (const std::string& name : delta.cluster_removals) {
    out.clusters.erase(name);
  }
  for (const auto& [name, spec] : delta.cluster_upserts) {
    out.clusters[name] = spec;
  }
  for (const std::string& host : delta.route_removals) {
    out.routes.erase(host);
  }
  for (const auto& [host, cluster] : delta.route_upserts) {
    out.routes[host] = cluster;
  }
  return out;
}

std::size_t estimate_config_bytes(const SidecarConfig& config) {
  std::size_t bytes = 16 + policy_section_bytes(config);  // epoch + framing
  for (const auto& [host, cluster] : config.routes) {
    bytes += string_bytes(host) + string_bytes(cluster);
  }
  for (const auto& [name, spec] : config.clusters) {
    bytes += cluster_spec_bytes(spec);
  }
  return bytes;
}

std::size_t estimate_delta_bytes(const ConfigDelta& delta) {
  std::size_t bytes = 40;  // epoch + base/target hashes + framing
  if (delta.policy_changed) bytes += policy_section_bytes(delta.policy);
  for (const auto& [name, spec] : delta.cluster_upserts) {
    bytes += cluster_spec_bytes(spec);
  }
  for (const std::string& name : delta.cluster_removals) {
    bytes += string_bytes(name);
  }
  for (const auto& [host, cluster] : delta.route_upserts) {
    bytes += string_bytes(host) + string_bytes(cluster);
  }
  for (const std::string& host : delta.route_removals) {
    bytes += string_bytes(host);
  }
  return bytes;
}

}  // namespace meshnet::mesh
