#pragma once

// The sidecar's HTTP filter chain (Envoy's extension point, simplified).
//
// Filters see every request the sidecar proxies — inbound (remote sidecar
// -> local app) and outbound (local app -> remote service) — and may
// rewrite headers, assign a traffic class, choose a subset of upstream
// endpoints, or short-circuit with a local response. The cross-layer case
// study (core/) is implemented entirely as filters plugged in here, which
// is the paper's "easier evolvability" argument made concrete.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"
#include "mesh/tracing.h"
#include "sim/time.h"

namespace meshnet::mesh {

/// Mesh-level traffic class. The mesh itself is policy-free about what the
/// classes *mean*; the cross-layer prioritization maps application
/// priority onto them and attaches per-class transport/DSCP policy.
enum class TrafficClass {
  kDefault,
  kLatencySensitive,
  kScavenger,
};

std::string_view traffic_class_name(TrafficClass c) noexcept;

enum class FilterDirection { kInbound, kOutbound };

/// Per-request state threaded through the filter chain and the upstream
/// send machinery.
struct RequestContext {
  http::HttpRequest request;
  FilterDirection direction = FilterDirection::kOutbound;
  TrafficClass traffic_class = TrafficClass::kDefault;

  /// Route result: which upstream cluster (service) handles the request.
  std::string upstream_cluster;
  /// Subset constraint on endpoint labels (e.g. {"priority","high"}),
  /// typically set by the priority-subset routing filter.
  std::map<std::string, std::string> subset;

  /// Peer service identity (from x-mesh-source) for policy checks.
  std::string source_service;

  sim::Time start_time = 0;
  int attempt = 0;
  /// Previous retry backoff, threaded for decorrelated jitter.
  sim::Duration prev_backoff = 0;
  /// Pods already attempted for this request; retries prefer endpoints
  /// not on this list (Envoy's previous-hosts retry predicate).
  std::vector<std::string> tried_pods;
  Span span;
  bool span_active = false;

  /// Set by the fault-injection filter: delay to impose before the
  /// request proceeds upstream. The sidecar honours it after the chain.
  sim::Duration injected_delay = 0;

  /// Set by a filter to short-circuit with a local reply (e.g. 403).
  std::optional<http::HttpResponse> local_response;

  // --- admission-control state (mesh/admission.h) ---
  /// Ticket for a request parked in the admission queue (kPause).
  std::uint64_t admission_ticket = 0;
  /// True while the request holds an admission concurrency slot; the
  /// admission filter's on_response releases it exactly once.
  bool admission_admitted = false;
  sim::Time admission_dispatch_time = 0;
  /// Priority class the admission decision was made under (stable even
  /// if a later filter rewrites traffic_class).
  TrafficClass admission_class = TrafficClass::kDefault;
  /// Shed reason name when this sidecar shed the request ("" otherwise).
  std::string shed_reason;
};

enum class FilterStatus {
  kContinue,
  kStopIteration,  ///< Stop the chain; ctx.local_response is sent if set.
  kPause,          ///< Park the request; a continuation resumes or sheds it.
};

class HttpFilter {
 public:
  virtual ~HttpFilter() = default;
  virtual std::string name() const = 0;

  /// Runs (in order) before the request is forwarded.
  virtual FilterStatus on_request(RequestContext& ctx) = 0;

  /// Runs (in reverse order) when the response heads back.
  virtual void on_response(RequestContext& ctx,
                           http::HttpResponse& response) {
    (void)ctx;
    (void)response;
  }
};

/// Outcome of running the request half of a chain.
enum class ChainResult {
  kContinue,  ///< every filter continued; forward the request
  kStopped,   ///< a filter stopped; send ctx.local_response if present
  kPaused,    ///< a filter parked the request (admission queue)
};

class FilterChain {
 public:
  void append(std::shared_ptr<HttpFilter> filter) {
    filters_.push_back(std::move(filter));
  }

  /// Inserts `filter` immediately before the first filter named `name`;
  /// appends when no such filter exists.
  void insert_before(std::string_view name, std::shared_ptr<HttpFilter> filter);

  /// Runs request filters in order until one stops or pauses iteration.
  ChainResult run_request(RequestContext& ctx) const;

  /// Runs response filters in reverse registration order.
  void run_response(RequestContext& ctx, http::HttpResponse& response) const;

  std::size_t size() const noexcept { return filters_.size(); }
  std::vector<std::string> filter_names() const;

 private:
  std::vector<std::shared_ptr<HttpFilter>> filters_;
};

}  // namespace meshnet::mesh
