#pragma once

// The mesh control plane (istiod's role): a central place where the
// operator defines policy, which is compiled into per-sidecar configs and
// pushed to the data plane (xDS-style). It also owns service discovery
// (watching the cluster's ServiceRegistry by version), certificate
// issuance, the tracer, and the telemetry sink — the boxes in the paper's
// Fig. 1.
//
// Config distribution is failure-aware. Every push round mints a config
// *epoch* (monotonic, never reused); each sidecar's compiled config is
// fingerprinted so unchanged sidecars are skipped (delta-aware push), and
// delivered pushes are acked per sidecar. A push can be delayed, lost, or
// dropped (crash / partition); an un-acked push is retried with
// decorrelated-jitter backoff until the sidecar acks the current epoch.
// Sidecars that nack a push (validation failure — a poison config) keep
// their last-good config and the control plane rolls policy back to the
// last converged snapshot and pushes a fresh epoch. While the control
// plane is crashed the data plane serves stale-while-revalidate: last
// pushed endpoints keep routing, health checking keeps narrowing choice,
// and on recovery the control plane reconverges with paced, jittered
// pushes rather than a thundering herd.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "mesh/config_delta.h"
#include "mesh/sidecar.h"
#include "mesh/subset.h"
#include "mesh/telemetry.h"
#include "mesh/tracing.h"
#include "obs/metric_registry.h"

namespace meshnet::mesh {

/// Tunables for the failure-aware push channel. The defaults (zero
/// latency, zero loss, no partitions) deliver pushes inline and
/// synchronously — the legacy semantics every existing test relies on.
struct ControlPlaneConfig {
  /// Per-push one-way delivery latency: base + uniform(0, jitter).
  /// 0 base and 0 jitter short-circuits the simulated channel and
  /// applies the config inline.
  sim::Duration push_latency_base = 0;
  sim::Duration push_latency_jitter = 0;
  /// A push whose ack has not arrived within this window is presumed
  /// lost and retried.
  sim::Duration ack_timeout = sim::milliseconds(500);
  /// Decorrelated-jitter backoff bounds for push retries.
  sim::Duration retry_backoff_base = sim::milliseconds(50);
  sim::Duration retry_backoff_max = sim::seconds(2);
  /// Post-recovery reconvergence: sidecar i's push launches at
  /// i * pacing + uniform(0, pacing) instead of all at once.
  sim::Duration reconverge_pacing = sim::milliseconds(20);
  /// Probability that a push round-trip is lost in the channel.
  double push_loss = 0.0;
  /// Certificate refresh-ahead fraction: re-issue when this fraction of
  /// the lifetime remains (e.g. 0.2 rotates at 80% of lifetime). 0
  /// disables rotation — certs are issued once, at injection.
  double cert_refresh_ahead = 0.0;
  /// Incremental (xDS delta-style) config push: once a sidecar has acked
  /// a config, later pushes carry only the changed clusters/routes (see
  /// mesh/config_delta.h) instead of the full snapshot. Off by default —
  /// full-snapshot semantics, bit-identical to the legacy channel.
  bool delta_push = false;
};

/// Operator-defined, mesh-wide policy.
struct MeshPolicies {
  LbPolicy default_lb = LbPolicy::kRoundRobin;
  RetryPolicy retry;
  CircuitBreakerConfig breaker;
  /// Active health checking, applied to every cluster (off by default).
  HealthCheckConfig health_check;
  sim::Duration request_timeout = sim::seconds(15);
  /// Priority-aware overload control, applied to every sidecar's inbound
  /// path (off by default; the overload experiments turn it on).
  AdmissionConfig admission;
  std::map<std::string, std::vector<std::string>> authorization;
  std::map<TrafficClass, TrafficClassPolicy> class_policies;
  /// Per-cluster LB overrides (cluster name -> policy).
  std::map<std::string, LbPolicy> lb_overrides;
  /// Deterministic endpoint subsetting: bounds how many endpoints of one
  /// cluster a single sidecar tracks (off by default; see mesh/subset.h).
  SubsetConfig subset;
  /// Cluster scoping (Istio's Sidecar resource): if a service has an
  /// entry, its sidecars' configs contain only the listed clusters —
  /// bounding per-sidecar state and health-check fan-out to the services
  /// it actually calls. No entry = every cluster (legacy behaviour).
  std::map<std::string, std::vector<std::string>> cluster_scopes;
  /// TLS session layer (mesh/tls_session.h). `tls.enabled` is the
  /// mesh-wide mTLS default; per-service exceptions go in
  /// `mtls_overrides` (service -> on/off). compile_config resolves the
  /// effective value per service into both the server side (the
  /// sidecar's inbound listener accepts TLS) and the client side (every
  /// cluster targeting that service carries ClusterSpec::mtls).
  TlsParams tls;
  std::map<std::string, bool> mtls_overrides;
  std::uint32_t transport_mss = 1460;
  std::size_t max_pool_connections = 256;
  sim::Duration certificate_lifetime = sim::seconds(24 * 3600);
  /// Per-traversal proxy processing cost (see SidecarConfig).
  sim::Duration proxy_overhead_base = sim::microseconds(150);
  sim::Duration proxy_overhead_jitter = sim::microseconds(100);
  /// Sidecar access logging: keep one structured record per N proxied
  /// requests (0 = off). See obs::AccessLog.
  std::uint64_t access_log_sample_every = 0;
  /// Push-channel failure model and cert-rotation policy.
  ControlPlaneConfig cp;
  /// Propagated into every sidecar's config on push (see SidecarConfig).
  std::function<void(transport::Connection&, TrafficClass)>
      upstream_connection_hook;
};

/// How one sidecar attaches to a pod. When the mesh is built from a
/// cluster::MeshSpec (app/mesh_spec.h) these are spec data: the spec is
/// the single source of truth and MeshBuilder derives the matching
/// app::MicroserviceOptions from the same fields — hand-wiring both and
/// keeping the duplicated port defaults in sync is the legacy path the
/// builder replaces.
struct SidecarInjectionOptions {
  net::Port app_port = 8080;
  bool gateway_mode = false;
  net::Port outbound_port = 15001;  ///< gateway exposes this port

  /// Spec-roundtrip constructor: the ingress-gateway flavour (no local
  /// app; the outbound listener is exposed on `port`).
  static SidecarInjectionOptions gateway(net::Port port) {
    SidecarInjectionOptions options;
    options.gateway_mode = true;
    options.outbound_port = port;
    return options;
  }
};

class ControlPlane {
 public:
  ControlPlane(sim::Simulator& sim, cluster::Cluster& cluster,
               MeshPolicies policies = {});
  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Creates, registers and starts a sidecar for `pod`, with the standard
  /// filter set installed and current discovery state pushed.
  Sidecar& inject_sidecar(cluster::Pod& pod, SidecarInjectionOptions options);

  /// Begins watching the service registry; on every version change the
  /// control plane re-pushes config to all sidecars. `poll_interval`
  /// models xDS discovery latency.
  void start(sim::Duration poll_interval = sim::milliseconds(100));

  /// Mints a new config epoch and launches a push to every sidecar
  /// (delta-aware: sidecars whose compiled config is unchanged are
  /// skipped and implicitly acked).
  void push_config();

  /// Issues (or rotates) a certificate for a service identity. The cert
  /// is retained; rotation reaches sidecars on the next config push.
  Certificate issue_certificate(const std::string& service);

  // --- failure model -----------------------------------------------------

  /// Stops polling, cancels every pending push/retry/rotation timer and
  /// ignores in-flight acks: the control plane is down. The data plane
  /// keeps serving its last-applied config.
  void crash();
  /// Restarts after a crash: resumes polling, re-issues expired certs
  /// and reconverges the mesh with paced, jittered pushes.
  void recover();
  bool crashed() const noexcept { return crashed_; }

  /// Partitions one sidecar from the control plane (pushes to it are
  /// dropped until healed). Healing relaunches a push if it is stale.
  void set_partitioned(const std::string& pod_name, bool partitioned);

  /// Overrides the push-channel loss probability at runtime.
  void set_push_loss(double probability);

  // --- convergence introspection -----------------------------------------

  /// Current config epoch (0 before the first push).
  std::uint64_t epoch() const noexcept { return epoch_; }
  /// True when every running sidecar has acked the current epoch (and
  /// the control plane is up).
  bool converged() const;
  /// Epoch last acked by one sidecar (0 = never acked / unknown pod).
  std::uint64_t acked_epoch(const std::string& pod_name) const;
  /// Sidecars not on the current epoch.
  std::size_t stale_sidecars() const;
  /// Age of the oldest registry change not yet pushed (0 when caught
  /// up). Grows without bound while the control plane is crashed — the
  /// routing-staleness signal the CHAOS_CP experiment samples.
  sim::Duration discovery_staleness() const;
  /// Crash-recovery to full convergence, for the most recent recovery
  /// (0 until a recovery has completed).
  sim::Duration last_reconverge_duration() const noexcept {
    return last_reconverge_;
  }

  /// The current certificate for a service (nullptr before issuance).
  const Certificate* certificate(const std::string& service) const;

  /// Test hook: mutates each compiled config before it is pushed (poison
  /// injection). Cleared automatically when a nack triggers rollback.
  void set_compile_mutator(
      std::function<void(const std::string& pod, SidecarConfig&)> mutator) {
    compile_mutator_ = std::move(mutator);
  }

  MeshPolicies& policies() noexcept { return policies_; }
  /// The unified observability registry every mesh surface records into.
  obs::MetricRegistry& metrics() noexcept { return registry_; }
  const obs::MetricRegistry& metrics() const noexcept { return registry_; }
  Tracer& tracer() noexcept { return tracer_; }
  TelemetrySink& telemetry() noexcept { return telemetry_; }
  cluster::Cluster& cluster() noexcept { return cluster_; }
  const std::vector<std::unique_ptr<Sidecar>>& sidecars() const {
    return sidecars_;
  }
  Sidecar* sidecar_for(const std::string& pod_name);
  std::uint64_t pushes() const noexcept { return pushes_; }

  /// Push-channel byte accounting (modelled wire sizes, see
  /// mesh/config_delta.h). Full-snapshot pushes and delta pushes are
  /// tallied separately so experiments can compare the two transports;
  /// `delta_fallbacks` counts deltas that missed their base and were
  /// re-sent as full snapshots.
  struct PushChannelBytes {
    std::uint64_t full_bytes = 0;
    std::uint64_t delta_bytes = 0;
    std::uint64_t full_pushes = 0;
    std::uint64_t delta_pushes = 0;
    std::uint64_t delta_fallbacks = 0;
  };
  PushChannelBytes push_channel_bytes() const noexcept {
    return {push_bytes_full_, push_bytes_delta_, pushes_full_, pushes_delta_,
            delta_fallbacks_};
  }
  /// Sim time when the mesh most recently reached full convergence
  /// (every sidecar acked the then-current epoch); 0 until then.
  sim::Time last_converged_at() const noexcept { return last_converged_at_; }

 private:
  /// Per-sidecar push channel state, keyed by pod name.
  struct PushState {
    std::uint64_t acked_epoch = 0;
    std::uint64_t acked_hash = 0;  ///< fingerprint of last acked config
    int attempt = 0;               ///< retries since the last ack
    sim::Duration prev_backoff = 0;
    sim::EventId delivery_timer = sim::kInvalidEventId;
    sim::EventId ack_timer = sim::kInvalidEventId;
    sim::EventId retry_timer = sim::kInvalidEventId;
    bool partitioned = false;
    /// Last config this sidecar acked, kept only under cp.delta_push:
    /// the base future deltas are diffed against.
    std::shared_ptr<const SidecarConfig> acked_config;
    /// Forces the next push to carry a full snapshot (set after a delta
    /// base/target mismatch; cleared once a full push is launched).
    bool force_full = false;
  };

  SidecarConfig compile_config(const Sidecar& sidecar);
  /// Effective mTLS setting for `service`: per-service override if
  /// present, else the mesh-wide default (policies_.tls.enabled).
  bool mtls_enabled_for(const std::string& service) const;
  void poll_registry();
  /// Mints the next epoch and records the registry version it covers.
  void begin_epoch();
  /// Compiles + fingerprints + delivers (or drops) one sidecar's push
  /// for the current epoch.
  void launch_push(Sidecar& sidecar);
  void deliver_push(const std::string& pod_name, SidecarConfig config,
                    std::uint64_t hash);
  /// Delivers an incremental push; on base/target mismatch falls back to
  /// an immediate full-snapshot re-push (no rollback — the mismatch is a
  /// transport artefact, not a poison config).
  void deliver_delta(const std::string& pod_name, ConfigDelta delta,
                     SidecarConfig target, std::uint64_t hash);
  void handle_ack(const std::string& pod_name, std::uint64_t epoch,
                  std::uint64_t hash);
  void handle_nack(const std::string& pod_name, std::uint64_t epoch,
                   const std::string& reason);
  void schedule_retry(const std::string& pod_name);
  void cancel_push_timers(PushState& state);
  void check_convergence();
  void update_staleness_gauges();
  void schedule_cert_rotation(const std::string& service);
  void record_event(obs::EventKind kind, const std::string& subject,
                    const std::string& detail);

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  MeshPolicies policies_;
  /// Declared before the tracer/telemetry adapters that record into it.
  obs::MetricRegistry registry_;
  Tracer tracer_{&registry_};
  TelemetrySink telemetry_{&registry_};
  std::vector<std::unique_ptr<Sidecar>> sidecars_;
  std::map<std::string, PushState> push_state_;
  std::map<std::string, Certificate> certs_;
  std::map<std::string, sim::EventId> cert_timers_;
  std::function<void(const std::string&, SidecarConfig&)> compile_mutator_;

  std::uint64_t last_registry_version_ = 0;
  std::uint64_t next_serial_ = 1;
  std::uint64_t pushes_ = 0;
  std::uint64_t epoch_ = 0;
  /// Epoch whose nack already triggered a rollback (rollback fires at
  /// most once per poisoned epoch even when several sidecars nack it).
  std::uint64_t rolled_back_epoch_ = 0;
  /// A nack may trigger at most one rollback per converged generation,
  /// so a persistently-invalid input degrades to paced retries instead
  /// of an unbounded rollback->push->nack cycle.
  bool rollback_armed_ = true;
  /// Policy snapshot from the last fully-converged epoch — the rollback
  /// target when a later push is nacked.
  MeshPolicies last_good_policies_;
  bool have_last_good_ = false;
  bool crashed_ = false;
  bool pending_reconverge_ = false;
  sim::Time recovered_at_ = 0;
  sim::Duration last_reconverge_ = 0;
  sim::Time last_converged_at_ = 0;
  /// Push-channel byte tallies (counted when a push actually enters the
  /// channel — noop-skips, partitions and crashes transfer nothing).
  std::uint64_t push_bytes_full_ = 0;
  std::uint64_t push_bytes_delta_ = 0;
  std::uint64_t pushes_full_ = 0;
  std::uint64_t pushes_delta_ = 0;
  std::uint64_t delta_fallbacks_ = 0;
  /// When the oldest un-pushed registry change landed (0 = caught up).
  sim::Time pending_change_since_ = 0;
  sim::EventId poll_timer_ = sim::kInvalidEventId;
  sim::Duration poll_interval_ = 0;
  bool started_ = false;
  sim::RngStream push_rng_;
  sim::RngStream pace_rng_;

  struct CpMetrics {
    obs::Counter* attempts = nullptr;
    obs::Counter* acks = nullptr;
    obs::Counter* nacks = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* skipped_noop = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* rollbacks = nullptr;
    obs::Counter* cert_rotations = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Gauge* epoch = nullptr;
    obs::Gauge* stale = nullptr;
    obs::Gauge* reconverge_ms = nullptr;
    // Created only when cp.delta_push is enabled (registry stays
    // byte-identical for legacy meshes).
    obs::Counter* delta_pushes = nullptr;
    obs::Counter* delta_fallbacks = nullptr;
    obs::Counter* delta_bytes = nullptr;
    obs::Counter* full_bytes = nullptr;
    // Created only when policies.subset is enabled.
    obs::Counter* subset_assignments = nullptr;
    obs::Counter* subset_repairs = nullptr;
  } cpm_;
};

}  // namespace meshnet::mesh
