#pragma once

// The mesh control plane (istiod's role): a central place where the
// operator defines policy, which is compiled into per-sidecar configs and
// pushed to the data plane (xDS-style). It also owns service discovery
// (watching the cluster's ServiceRegistry by version), certificate
// issuance, the tracer, and the telemetry sink — the boxes in the paper's
// Fig. 1.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "mesh/sidecar.h"
#include "mesh/telemetry.h"
#include "mesh/tracing.h"
#include "obs/metric_registry.h"

namespace meshnet::mesh {

/// A workload identity certificate (SPIFFE-flavoured). The simulation
/// does not encrypt bytes, but identity issuance/rotation is modelled so
/// policy has something real to hang off.
struct Certificate {
  std::uint64_t serial = 0;
  std::string spiffe_id;  ///< "spiffe://cluster.local/ns/default/sa/<svc>"
  sim::Time issued_at = 0;
  sim::Time expires_at = 0;

  bool valid_at(sim::Time now) const noexcept {
    return now >= issued_at && now < expires_at;
  }
};

/// Operator-defined, mesh-wide policy.
struct MeshPolicies {
  LbPolicy default_lb = LbPolicy::kRoundRobin;
  RetryPolicy retry;
  CircuitBreakerConfig breaker;
  /// Active health checking, applied to every cluster (off by default).
  HealthCheckConfig health_check;
  sim::Duration request_timeout = sim::seconds(15);
  /// Priority-aware overload control, applied to every sidecar's inbound
  /// path (off by default; the overload experiments turn it on).
  AdmissionConfig admission;
  std::map<std::string, std::vector<std::string>> authorization;
  std::map<TrafficClass, TrafficClassPolicy> class_policies;
  /// Per-cluster LB overrides (cluster name -> policy).
  std::map<std::string, LbPolicy> lb_overrides;
  std::uint32_t transport_mss = 1460;
  std::size_t max_pool_connections = 256;
  sim::Duration certificate_lifetime = sim::seconds(24 * 3600);
  /// Per-traversal proxy processing cost (see SidecarConfig).
  sim::Duration proxy_overhead_base = sim::microseconds(150);
  sim::Duration proxy_overhead_jitter = sim::microseconds(100);
  /// Sidecar access logging: keep one structured record per N proxied
  /// requests (0 = off). See obs::AccessLog.
  std::uint64_t access_log_sample_every = 0;
  /// Propagated into every sidecar's config on push (see SidecarConfig).
  std::function<void(transport::Connection&, TrafficClass)>
      upstream_connection_hook;
};

struct SidecarInjectionOptions {
  net::Port app_port = 8080;
  bool gateway_mode = false;
  net::Port outbound_port = 15001;  ///< gateway exposes this port
};

class ControlPlane {
 public:
  ControlPlane(sim::Simulator& sim, cluster::Cluster& cluster,
               MeshPolicies policies = {});
  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Creates, registers and starts a sidecar for `pod`, with the standard
  /// filter set installed and current discovery state pushed.
  Sidecar& inject_sidecar(cluster::Pod& pod, SidecarInjectionOptions options);

  /// Begins watching the service registry; on every version change the
  /// control plane re-pushes config to all sidecars. `poll_interval`
  /// models xDS push latency.
  void start(sim::Duration poll_interval = sim::milliseconds(100));

  /// Immediately recompiles and pushes config to every sidecar.
  void push_config();

  /// Issues (or rotates) a certificate for a service identity.
  Certificate issue_certificate(const std::string& service);

  MeshPolicies& policies() noexcept { return policies_; }
  /// The unified observability registry every mesh surface records into.
  obs::MetricRegistry& metrics() noexcept { return registry_; }
  const obs::MetricRegistry& metrics() const noexcept { return registry_; }
  Tracer& tracer() noexcept { return tracer_; }
  TelemetrySink& telemetry() noexcept { return telemetry_; }
  cluster::Cluster& cluster() noexcept { return cluster_; }
  const std::vector<std::unique_ptr<Sidecar>>& sidecars() const {
    return sidecars_;
  }
  Sidecar* sidecar_for(const std::string& pod_name);
  std::uint64_t pushes() const noexcept { return pushes_; }

 private:
  SidecarConfig compile_config(const Sidecar& sidecar) const;
  void poll_registry();

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  MeshPolicies policies_;
  /// Declared before the tracer/telemetry adapters that record into it.
  obs::MetricRegistry registry_;
  Tracer tracer_{&registry_};
  TelemetrySink telemetry_{&registry_};
  std::vector<std::unique_ptr<Sidecar>> sidecars_;
  std::uint64_t last_registry_version_ = 0;
  std::uint64_t next_serial_ = 1;
  std::uint64_t pushes_ = 0;
  sim::Duration poll_interval_ = 0;
  bool started_ = false;
};

}  // namespace meshnet::mesh
