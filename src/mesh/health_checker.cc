#include "mesh/health_checker.h"

#include <set>
#include <utility>

namespace meshnet::mesh {

HealthChecker::HealthChecker(sim::Simulator& sim,
                             transport::TransportHost& host, std::string owner,
                             std::uint64_t seed)
    : sim_(sim),
      host_(host),
      owner_(std::move(owner)),
      rng_(seed, "health:" + owner_) {}

HealthChecker::~HealthChecker() {
  for (auto& [key, target] : targets_) detach(*target);
}

void HealthChecker::detach(Target& target) {
  if (target.next_probe != sim::kInvalidEventId) {
    sim_.cancel(target.next_probe);
    target.next_probe = sim::kInvalidEventId;
  }
  if (target.timeout_timer != sim::kInvalidEventId) {
    sim_.cancel(target.timeout_timer);
    target.timeout_timer = sim::kInvalidEventId;
  }
  if (target.inflight != 0 && target.pool) {
    target.pool->cancel(target.inflight);
    target.inflight = 0;
  }
  // Invalidate any callback still in flight.
  ++target.seq;
}

void HealthChecker::update_targets(
    const std::string& cluster, const HealthCheckConfig& config,
    const std::vector<cluster::Endpoint>& endpoints, net::Port probe_port) {
  std::set<std::string> seen;
  if (config.enabled) {
    for (const cluster::Endpoint& ep : endpoints) {
      seen.insert(ep.pod_name);
      const Key key{cluster, ep.pod_name};
      const auto it = targets_.find(key);
      if (it != targets_.end()) {
        Target& existing = *it->second;
        if (existing.ip == ep.ip && existing.port == probe_port) {
          existing.config = config;  // pick up tuning changes, keep state
          continue;
        }
        detach(existing);  // address changed: treat as a new endpoint
        targets_.erase(it);
      }
      auto target = std::make_unique<Target>();
      target->cluster = cluster;
      target->pod = ep.pod_name;
      target->ip = ep.ip;
      target->port = probe_port;
      target->config = config;
      HttpClientPool::Options options;
      // A timed-out probe aborts its connection; allow one spare so the
      // next probe never queues behind the teardown.
      options.max_connections = 2;
      target->pool = std::make_unique<HttpClientPool>(
          sim_, host_, net::SocketAddress{ep.ip, probe_port}, options,
          owner_ + ":hc->" + ep.pod_name);
      targets_.emplace(key, std::move(target));
      // Stagger the first probe across [0, interval) so a fleet of
      // checkers does not synchronize.
      const auto first = static_cast<sim::Duration>(
          rng_.uniform() * static_cast<double>(config.interval));
      schedule_probe(key, first);
    }
  }
  for (auto it = targets_.begin(); it != targets_.end();) {
    if (it->first.first == cluster && seen.count(it->first.second) == 0) {
      detach(*it->second);
      it = targets_.erase(it);
    } else {
      ++it;
    }
  }
}

void HealthChecker::retain_clusters(const std::vector<std::string>& clusters) {
  const std::set<std::string> keep(clusters.begin(), clusters.end());
  for (auto it = targets_.begin(); it != targets_.end();) {
    if (keep.count(it->first.first) == 0) {
      detach(*it->second);
      it = targets_.erase(it);
    } else {
      ++it;
    }
  }
}

bool HealthChecker::healthy(const std::string& cluster,
                            const std::string& pod) const {
  const auto it = targets_.find(Key{cluster, pod});
  return it == targets_.end() ? true : it->second->healthy;
}

void HealthChecker::schedule_probe(const Key& key, sim::Duration delay) {
  const auto it = targets_.find(key);
  if (it == targets_.end()) return;
  it->second->next_probe = sim_.schedule_after(delay, [this, key] {
    const auto tit = targets_.find(key);
    if (tit == targets_.end()) return;
    tit->second->next_probe = sim::kInvalidEventId;
    run_probe(key);
  });
}

void HealthChecker::run_probe(const Key& key) {
  const auto it = targets_.find(key);
  if (it == targets_.end()) return;
  Target& target = *it->second;
  ++stats_.probes_sent;
  const std::uint64_t seq = ++target.seq;

  http::HttpRequest probe;
  probe.method = "GET";
  probe.path = target.config.path;
  probe.headers.set(http::headers::Id::kHost, target.cluster);
  probe.headers.set("x-mesh-health-probe", "1");

  target.inflight = target.pool->request(
      std::move(probe),
      [this, key, seq](std::optional<http::HttpResponse> response,
                       const std::string& /*error*/) {
        handle_result(key, seq, response.has_value() && response->status == 200);
      });

  target.timeout_timer =
      sim_.schedule_after(target.config.timeout, [this, key, seq] {
        const auto tit = targets_.find(key);
        if (tit == targets_.end()) return;
        Target& t = *tit->second;
        if (t.seq != seq) return;
        t.timeout_timer = sim::kInvalidEventId;
        if (t.inflight != 0) {
          // Cancel guarantees the pool handler never fires for this probe.
          t.pool->cancel(t.inflight);
          t.inflight = 0;
        }
        ++stats_.probes_timed_out;
        handle_result(key, seq, false);
      });
}

void HealthChecker::handle_result(const Key& key, std::uint64_t seq, bool ok) {
  const auto it = targets_.find(key);
  if (it == targets_.end()) return;
  Target& target = *it->second;
  if (target.seq != seq) return;  // superseded (detach or reconcile)
  if (target.timeout_timer != sim::kInvalidEventId) {
    sim_.cancel(target.timeout_timer);
    target.timeout_timer = sim::kInvalidEventId;
  }
  target.inflight = 0;

  if (ok) {
    target.fails = 0;
    ++target.passes;
    if (!target.healthy && target.passes >= target.config.healthy_threshold) {
      if (sim_.now() < target.damped_until) {
        // Damped: the endpoint flapped too often, so readmission waits out
        // the penalty even though the probes look good again.
        ++stats_.flap_damps;
      } else {
        target.healthy = true;
        note_transition(target);
        ++stats_.readmissions;
        if (hook_) hook_(target.cluster, target.pod, true, sim_.now());
      }
    }
  } else {
    ++stats_.probes_failed;
    target.passes = 0;
    ++target.fails;
    if (target.healthy && target.fails >= target.config.unhealthy_threshold) {
      target.healthy = false;
      note_transition(target);
      ++stats_.evictions;
      if (hook_) hook_(target.cluster, target.pod, false, sim_.now());
    }
  }
  schedule_probe(key, target.config.interval);
}

void HealthChecker::note_transition(Target& target) {
  if (target.config.flap_max_transitions == 0) return;
  const sim::Time now = sim_.now();
  target.transitions.push_back(now);
  auto& ts = target.transitions;
  while (!ts.empty() && now - ts.front() > target.config.flap_window)
    ts.erase(ts.begin());
  if (ts.size() >= target.config.flap_max_transitions)
    target.damped_until = now + target.config.flap_penalty;
}

}  // namespace meshnet::mesh
