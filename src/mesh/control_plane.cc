#include "mesh/control_plane.h"

#include <utility>

#include "mesh/admission.h"
#include "mesh/builtin_filters.h"
#include "util/logging.h"

namespace meshnet::mesh {

ControlPlane::ControlPlane(sim::Simulator& sim, cluster::Cluster& cluster,
                           MeshPolicies policies)
    : sim_(sim), cluster_(cluster), policies_(std::move(policies)) {
  telemetry_.access_log().set_sample_every(
      policies_.access_log_sample_every);
}

Sidecar& ControlPlane::inject_sidecar(cluster::Pod& pod,
                                      SidecarInjectionOptions options) {
  SidecarConfig config;
  config.service_name = pod.service().empty() ? pod.name() : pod.service();
  config.app_port = options.gateway_mode ? 0 : options.app_port;
  config.gateway_mode = options.gateway_mode;
  config.outbound_port = options.outbound_port;

  auto sidecar = std::make_unique<Sidecar>(sim_, pod, tracer_, &telemetry_,
                                           std::move(config));
  Sidecar& ref = *sidecar;
  sidecars_.push_back(std::move(sidecar));

  // Standard filter set. Order matters: identity before authz; tracing
  // first so every later filter sees the request id. Admission runs last
  // on the inbound chain so authorization rejects never consume queue
  // slots and provenance (installed later via insert_before) has already
  // resolved the request's priority class.
  const std::string service = ref.config().service_name;
  ref.inbound_filters().append(
      std::make_shared<TracingFilter>(tracer_, sim_, service));
  ref.inbound_filters().append(std::make_shared<AuthorizationFilter>(
      service, &policies_.authorization));
  Sidecar* raw = &ref;
  ref.inbound_filters().append(std::make_shared<AdmissionFilter>(
      sim_, [raw] { return raw->admission_controller(); }));
  ref.outbound_filters().append(
      std::make_shared<TracingFilter>(tracer_, sim_, service));
  ref.outbound_filters().append(
      std::make_shared<SourceIdentityFilter>(service));

  issue_certificate(service);
  ref.apply_config(compile_config(ref));
  ref.start();
  return ref;
}

void ControlPlane::start(sim::Duration poll_interval) {
  if (started_) return;
  started_ = true;
  poll_interval_ = poll_interval;
  push_config();
  sim_.schedule_after(poll_interval_, [this] { poll_registry(); });
}

void ControlPlane::poll_registry() {
  if (cluster_.registry().version() != last_registry_version_) {
    push_config();
  }
  sim_.schedule_after(poll_interval_, [this] { poll_registry(); });
}

void ControlPlane::push_config() {
  last_registry_version_ = cluster_.registry().version();
  telemetry_.access_log().set_sample_every(
      policies_.access_log_sample_every);
  for (const auto& sidecar : sidecars_) {
    sidecar->apply_config(compile_config(*sidecar));
  }
  ++pushes_;
  MESHNET_DEBUG() << "control plane push #" << pushes_ << " (registry v"
                  << last_registry_version_ << ")";
}

SidecarConfig ControlPlane::compile_config(const Sidecar& sidecar) const {
  SidecarConfig config;
  config.service_name = sidecar.config().service_name;
  config.retry = policies_.retry;
  config.request_timeout = policies_.request_timeout;
  config.admission = policies_.admission;
  config.authorization = policies_.authorization;
  config.class_policies = policies_.class_policies;
  config.transport_mss = policies_.transport_mss;
  config.max_pool_connections = policies_.max_pool_connections;
  config.upstream_connection_hook = policies_.upstream_connection_hook;
  config.proxy_overhead_base = policies_.proxy_overhead_base;
  config.proxy_overhead_jitter = policies_.proxy_overhead_jitter;

  for (const cluster::ServiceInfo* info : cluster_.registry().services()) {
    ClusterSpec spec;
    spec.name = info->name;
    spec.endpoints = info->endpoints;
    spec.breaker = policies_.breaker;
    spec.health_check = policies_.health_check;
    spec.lb = policies_.default_lb;
    const auto lb_it = policies_.lb_overrides.find(info->name);
    if (lb_it != policies_.lb_overrides.end()) spec.lb = lb_it->second;
    config.clusters.emplace(info->name, std::move(spec));
  }
  return config;
}

Certificate ControlPlane::issue_certificate(const std::string& service) {
  Certificate cert;
  cert.serial = next_serial_++;
  cert.spiffe_id = "spiffe://cluster.local/ns/default/sa/" + service;
  cert.issued_at = sim_.now();
  cert.expires_at = sim_.now() + policies_.certificate_lifetime;
  return cert;
}

Sidecar* ControlPlane::sidecar_for(const std::string& pod_name) {
  for (const auto& sidecar : sidecars_) {
    if (sidecar->pod().name() == pod_name) return sidecar.get();
  }
  return nullptr;
}

}  // namespace meshnet::mesh
