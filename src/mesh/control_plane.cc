#include "mesh/control_plane.h"

#include <algorithm>
#include <utility>

#include "mesh/admission.h"
#include "mesh/builtin_filters.h"
#include "util/logging.h"

namespace meshnet::mesh {

ControlPlane::ControlPlane(sim::Simulator& sim, cluster::Cluster& cluster,
                           MeshPolicies policies)
    : sim_(sim),
      cluster_(cluster),
      policies_(std::move(policies)),
      push_rng_(0xc0de, "cp:push"),
      pace_rng_(0xc0de, "cp:pace") {
  telemetry_.access_log().set_sample_every(
      policies_.access_log_sample_every);
  cpm_.attempts = &registry_.counter("cp_push_attempts_total");
  cpm_.acks = &registry_.counter("cp_push_acks_total");
  cpm_.nacks = &registry_.counter("cp_push_nacks_total");
  cpm_.retries = &registry_.counter("cp_push_retries_total");
  cpm_.skipped_noop = &registry_.counter("cp_push_skipped_noop");
  cpm_.dropped = &registry_.counter("cp_push_dropped_total");
  cpm_.rollbacks = &registry_.counter("cp_config_rollbacks_total");
  cpm_.cert_rotations = &registry_.counter("cp_cert_rotations_total");
  cpm_.crashes = &registry_.counter("cp_crashes_total");
  cpm_.recoveries = &registry_.counter("cp_recoveries_total");
  cpm_.epoch = &registry_.gauge("config_epoch");
  cpm_.stale = &registry_.gauge("cp_sidecars_stale");
  cpm_.reconverge_ms = &registry_.gauge("cp_reconverge_ms");
  // Opt-in series only: a legacy mesh's registry stays byte-identical.
  if (policies_.cp.delta_push) {
    cpm_.delta_pushes = &registry_.counter("cp_delta_pushes_total");
    cpm_.delta_fallbacks = &registry_.counter("cp_delta_fallbacks_total");
    cpm_.delta_bytes = &registry_.counter("cp_delta_push_bytes_total");
    cpm_.full_bytes = &registry_.counter("cp_full_push_bytes_total");
  }
  if (policies_.subset.enabled) {
    cpm_.subset_assignments =
        &registry_.counter("subset_endpoints_assigned_total");
    cpm_.subset_repairs =
        &registry_.counter("subset_coverage_repairs_total");
  }
  // Staleness accounting rides the cluster's watch channel, not the
  // control plane's poll loop, so discovery churn is timestamped even
  // while the control plane is crashed.
  cluster_.registry().set_change_listener([this](std::uint64_t) {
    if (pending_change_since_ == 0) pending_change_since_ = sim_.now();
  });
}

Sidecar& ControlPlane::inject_sidecar(cluster::Pod& pod,
                                      SidecarInjectionOptions options) {
  SidecarConfig config;
  config.service_name = pod.service().empty() ? pod.name() : pod.service();
  config.app_port = options.gateway_mode ? 0 : options.app_port;
  config.gateway_mode = options.gateway_mode;
  config.outbound_port = options.outbound_port;

  auto sidecar = std::make_unique<Sidecar>(sim_, pod, tracer_, &telemetry_,
                                           std::move(config));
  Sidecar& ref = *sidecar;
  sidecars_.push_back(std::move(sidecar));

  // Standard filter set. Order matters: identity before authz; tracing
  // first so every later filter sees the request id. Admission runs last
  // on the inbound chain so authorization rejects never consume queue
  // slots and provenance (installed later via insert_before) has already
  // resolved the request's priority class.
  const std::string service = ref.config().service_name;
  ref.inbound_filters().append(
      std::make_shared<TracingFilter>(tracer_, sim_, service));
  ref.inbound_filters().append(std::make_shared<AuthorizationFilter>(
      service, &policies_.authorization));
  Sidecar* raw = &ref;
  ref.inbound_filters().append(std::make_shared<AdmissionFilter>(
      sim_, [raw] { return raw->admission_controller(); }));
  ref.outbound_filters().append(
      std::make_shared<TracingFilter>(tracer_, sim_, service));
  ref.outbound_filters().append(
      std::make_shared<SourceIdentityFilter>(service));

  issue_certificate(service);
  SidecarConfig compiled = compile_config(ref);
  const std::uint64_t hash = hash_sidecar_config(compiled);
  const std::uint64_t compiled_epoch = compiled.epoch;
  std::shared_ptr<const SidecarConfig> applied;
  if (policies_.cp.delta_push) {
    applied = std::make_shared<const SidecarConfig>(compiled);
  }
  if (ref.apply_config(std::move(compiled))) {
    // Injection is a local, synchronous bootstrap push: seed the channel
    // state so the next broadcast can skip this sidecar if unchanged.
    PushState& state = push_state_[pod.name()];
    state.acked_epoch = compiled_epoch;
    state.acked_hash = hash;
    state.acked_config = std::move(applied);
  }
  ref.start();
  return ref;
}

void ControlPlane::start(sim::Duration poll_interval) {
  if (started_) return;
  started_ = true;
  poll_interval_ = poll_interval;
  push_config();
  poll_timer_ =
      sim_.schedule_after(poll_interval_, [this] { poll_registry(); });
}

void ControlPlane::poll_registry() {
  poll_timer_ = sim::kInvalidEventId;
  if (crashed_) return;
  if (cluster_.registry().version() != last_registry_version_) {
    push_config();
  }
  update_staleness_gauges();
  poll_timer_ =
      sim_.schedule_after(poll_interval_, [this] { poll_registry(); });
}

void ControlPlane::begin_epoch() {
  ++epoch_;
  ++pushes_;
  last_registry_version_ = cluster_.registry().version();
  pending_change_since_ = 0;
  cpm_.epoch->set(static_cast<double>(epoch_));
  telemetry_.access_log().set_sample_every(
      policies_.access_log_sample_every);
}

void ControlPlane::push_config() {
  if (crashed_) return;
  begin_epoch();
  for (const auto& sidecar : sidecars_) {
    launch_push(*sidecar);
  }
  MESHNET_DEBUG() << "control plane push #" << pushes_ << " epoch "
                  << epoch_ << " (registry v" << last_registry_version_
                  << ")";
}

void ControlPlane::launch_push(Sidecar& sidecar) {
  const std::string pod = sidecar.pod().name();
  PushState& state = push_state_[pod];
  cancel_push_timers(state);

  SidecarConfig config = compile_config(sidecar);
  const std::uint64_t hash = hash_sidecar_config(config);
  if (state.acked_hash != 0 && hash == state.acked_hash) {
    // Delta-aware push: the compiled payload is byte-identical to what
    // the sidecar already runs, so the new epoch is acked implicitly.
    state.acked_epoch = std::max(state.acked_epoch, config.epoch);
    registry_.gauge("sidecar_config_epoch", {{"pod", pod}})
        .set(static_cast<double>(state.acked_epoch));
    cpm_.skipped_noop->inc();
    check_convergence();
    return;
  }

  cpm_.attempts->inc();
  if (state.partitioned || !sidecar.pod().running()) {
    // Unreachable sidecar: the push is dropped on the floor and the
    // retry loop keeps revalidating until the partition heals or the
    // pod comes back.
    cpm_.dropped->inc();
    schedule_retry(pod);
    return;
  }

  const ControlPlaneConfig& cp = policies_.cp;
  // Incremental transport: once a base config has been acked, ship only
  // the diff against it. A forced-full flag (set after a delta mismatch)
  // or a missing base falls back to the full snapshot.
  const bool use_delta =
      cp.delta_push && !state.force_full && state.acked_config != nullptr;
  ConfigDelta delta;
  if (use_delta) {
    delta = make_config_delta(*state.acked_config, config);
    push_bytes_delta_ += estimate_delta_bytes(delta);
    ++pushes_delta_;
    if (cpm_.delta_pushes != nullptr) cpm_.delta_pushes->inc();
    if (cpm_.delta_bytes != nullptr) {
      cpm_.delta_bytes->inc(estimate_delta_bytes(delta));
    }
  } else {
    push_bytes_full_ += estimate_config_bytes(config);
    ++pushes_full_;
    if (cpm_.full_bytes != nullptr) {
      cpm_.full_bytes->inc(estimate_config_bytes(config));
    }
    state.force_full = false;
  }
  const bool lost = cp.push_loss > 0.0 && push_rng_.uniform() < cp.push_loss;
  sim::Duration latency = cp.push_latency_base;
  if (cp.push_latency_jitter > 0) {
    latency += static_cast<sim::Duration>(
        push_rng_.uniform() * static_cast<double>(cp.push_latency_jitter));
  }
  if (lost) {
    // Swallowed by the channel; the ack timeout notices and retries.
    state.ack_timer = sim_.schedule_after(cp.ack_timeout, [this, pod] {
      const auto it = push_state_.find(pod);
      if (it == push_state_.end()) return;
      it->second.ack_timer = sim::kInvalidEventId;
      schedule_retry(pod);
    });
    return;
  }
  if (latency <= 0) {
    // Legacy inline path: zero-latency channel, synchronous apply + ack.
    if (use_delta) {
      deliver_delta(pod, std::move(delta), std::move(config), hash);
    } else {
      deliver_push(pod, std::move(config), hash);
    }
    return;
  }
  state.delivery_timer = sim_.schedule_after(
      latency, [this, pod, use_delta, delta = std::move(delta),
                config = std::move(config), hash]() mutable {
        const auto it = push_state_.find(pod);
        if (it == push_state_.end()) return;
        it->second.delivery_timer = sim::kInvalidEventId;
        if (use_delta) {
          deliver_delta(pod, std::move(delta), std::move(config), hash);
        } else {
          deliver_push(pod, std::move(config), hash);
        }
      });
  state.ack_timer = sim_.schedule_after(cp.ack_timeout, [this, pod] {
    const auto it = push_state_.find(pod);
    if (it == push_state_.end()) return;
    it->second.ack_timer = sim::kInvalidEventId;
    schedule_retry(pod);
  });
}

void ControlPlane::deliver_push(const std::string& pod_name,
                                SidecarConfig config, std::uint64_t hash) {
  Sidecar* sidecar = sidecar_for(pod_name);
  if (sidecar == nullptr) return;
  const std::uint64_t config_epoch = config.epoch;
  std::shared_ptr<const SidecarConfig> applied;
  if (policies_.cp.delta_push) {
    applied = std::make_shared<const SidecarConfig>(config);
  }
  if (sidecar->apply_config(std::move(config))) {
    if (applied != nullptr) {
      push_state_[pod_name].acked_config = std::move(applied);
    }
    handle_ack(pod_name, config_epoch, hash);
  } else {
    handle_nack(pod_name, config_epoch, sidecar->last_config_error());
  }
}

void ControlPlane::deliver_delta(const std::string& pod_name,
                                 ConfigDelta delta, SidecarConfig target,
                                 std::uint64_t hash) {
  Sidecar* sidecar = sidecar_for(pod_name);
  if (sidecar == nullptr) return;
  const std::uint64_t config_epoch = delta.epoch;
  if (sidecar->apply_config_delta(delta)) {
    push_state_[pod_name].acked_config =
        std::make_shared<const SidecarConfig>(std::move(target));
    handle_ack(pod_name, config_epoch, hash);
    return;
  }
  const std::string error = sidecar->last_config_error();
  if (error == "delta-base-mismatch" || error == "delta-target-mismatch") {
    // A transport artefact — the base this delta assumed never stuck, or
    // drifted — not a poison config, so no rollback: forget the base and
    // re-push the full snapshot immediately.
    ++delta_fallbacks_;
    if (cpm_.delta_fallbacks != nullptr) cpm_.delta_fallbacks->inc();
    record_event(obs::EventKind::kControlPlane, "push:" + pod_name,
                 "delta fallback: " + error);
    PushState& state = push_state_[pod_name];
    state.acked_config.reset();
    state.force_full = true;
    if (!crashed_) launch_push(*sidecar);
    return;
  }
  handle_nack(pod_name, config_epoch, error);
}

void ControlPlane::handle_ack(const std::string& pod_name,
                              std::uint64_t acked_epoch, std::uint64_t hash) {
  if (crashed_) return;  // acks into a dead control plane are lost
  PushState& state = push_state_[pod_name];
  if (state.ack_timer != sim::kInvalidEventId) {
    sim_.cancel(state.ack_timer);
    state.ack_timer = sim::kInvalidEventId;
  }
  state.attempt = 0;
  state.prev_backoff = 0;
  if (acked_epoch >= state.acked_epoch) {
    state.acked_epoch = acked_epoch;
    state.acked_hash = hash;
  }
  registry_.gauge("sidecar_config_epoch", {{"pod", pod_name}})
      .set(static_cast<double>(state.acked_epoch));
  cpm_.acks->inc();
  check_convergence();
}

void ControlPlane::handle_nack(const std::string& pod_name,
                               std::uint64_t nacked_epoch,
                               const std::string& reason) {
  if (crashed_) return;
  PushState& state = push_state_[pod_name];
  if (state.ack_timer != sim::kInvalidEventId) {
    sim_.cancel(state.ack_timer);
    state.ack_timer = sim::kInvalidEventId;
  }
  if (reason == "stale-epoch") {
    // A superseded push raced a newer one; the newer epoch is already in
    // flight, so there is nothing to repair.
    return;
  }
  cpm_.nacks->inc();
  record_event(obs::EventKind::kControlPlane, "push:" + pod_name,
               "nack: " + reason);
  if (nacked_epoch == epoch_ && rollback_armed_ &&
      nacked_epoch > rolled_back_epoch_) {
    // Poison config: the sidecar kept its last-good snapshot; restore the
    // last converged policy set and push a fresh (still monotonic) epoch.
    rolled_back_epoch_ = nacked_epoch;
    rollback_armed_ = false;
    compile_mutator_ = nullptr;
    if (have_last_good_) {
      // Runtime channel settings (loss overrides, pacing) survive the
      // rollback; only the operator policy payload reverts.
      ControlPlaneConfig cp = policies_.cp;
      policies_ = last_good_policies_;
      policies_.cp = cp;
    }
    cpm_.rollbacks->inc();
    record_event(obs::EventKind::kControlPlane, "control-plane",
                 "rollback to last-good epoch");
    push_config();
  } else {
    schedule_retry(pod_name);
  }
}

void ControlPlane::schedule_retry(const std::string& pod_name) {
  if (crashed_) return;
  PushState& state = push_state_[pod_name];
  if (state.retry_timer != sim::kInvalidEventId) return;
  ++state.attempt;
  RetryPolicy backoff;
  backoff.backoff_base = policies_.cp.retry_backoff_base;
  backoff.backoff_max = policies_.cp.retry_backoff_max;
  backoff.backoff_jitter = true;
  const sim::Duration sleep =
      next_retry_backoff(backoff, state.attempt, state.prev_backoff,
                         push_rng_);
  state.prev_backoff = sleep;
  cpm_.retries->inc();
  state.retry_timer = sim_.schedule_after(sleep, [this, pod_name] {
    const auto it = push_state_.find(pod_name);
    if (it == push_state_.end()) return;
    it->second.retry_timer = sim::kInvalidEventId;
    if (crashed_) return;
    Sidecar* sidecar = sidecar_for(pod_name);
    if (sidecar != nullptr) launch_push(*sidecar);
  });
}

void ControlPlane::cancel_push_timers(PushState& state) {
  for (sim::EventId* timer :
       {&state.delivery_timer, &state.ack_timer, &state.retry_timer}) {
    if (*timer != sim::kInvalidEventId) {
      sim_.cancel(*timer);
      *timer = sim::kInvalidEventId;
    }
  }
}

void ControlPlane::check_convergence() {
  if (crashed_) return;
  std::size_t stale = 0;
  bool all_current = true;
  for (const auto& sidecar : sidecars_) {
    const auto it = push_state_.find(sidecar->pod().name());
    const std::uint64_t acked =
        it == push_state_.end() ? 0 : it->second.acked_epoch;
    if (acked != epoch_) {
      ++stale;
      if (sidecar->pod().running()) all_current = false;
    }
  }
  cpm_.stale->set(static_cast<double>(stale));
  if (!all_current || epoch_ == 0) return;
  // Converged: every running sidecar runs the current epoch. This policy
  // set is proven good — it becomes the rollback target.
  last_good_policies_ = policies_;
  have_last_good_ = true;
  rollback_armed_ = true;
  last_converged_at_ = sim_.now();
  if (pending_reconverge_) {
    pending_reconverge_ = false;
    last_reconverge_ = sim_.now() - recovered_at_;
    cpm_.reconverge_ms->set(sim::to_seconds(last_reconverge_) * 1e3);
    record_event(obs::EventKind::kControlPlane, "control-plane",
                 "reconverged after recovery");
  }
}

bool ControlPlane::converged() const {
  if (crashed_) return false;
  for (const auto& sidecar : sidecars_) {
    if (!sidecar->pod().running()) continue;
    const auto it = push_state_.find(sidecar->pod().name());
    const std::uint64_t acked =
        it == push_state_.end() ? 0 : it->second.acked_epoch;
    if (acked != epoch_) return false;
  }
  return true;
}

std::uint64_t ControlPlane::acked_epoch(const std::string& pod_name) const {
  const auto it = push_state_.find(pod_name);
  return it == push_state_.end() ? 0 : it->second.acked_epoch;
}

std::size_t ControlPlane::stale_sidecars() const {
  std::size_t stale = 0;
  for (const auto& sidecar : sidecars_) {
    const auto it = push_state_.find(sidecar->pod().name());
    const std::uint64_t acked =
        it == push_state_.end() ? 0 : it->second.acked_epoch;
    if (acked != epoch_) ++stale;
  }
  return stale;
}

sim::Duration ControlPlane::discovery_staleness() const {
  return pending_change_since_ == 0 ? 0 : sim_.now() - pending_change_since_;
}

void ControlPlane::crash() {
  if (crashed_) return;
  crashed_ = true;
  cpm_.crashes->inc();
  record_event(obs::EventKind::kControlPlane, "control-plane", "crash");
  if (poll_timer_ != sim::kInvalidEventId) {
    sim_.cancel(poll_timer_);
    poll_timer_ = sim::kInvalidEventId;
  }
  for (auto& [pod, state] : push_state_) cancel_push_timers(state);
  for (auto& [service, timer] : cert_timers_) sim_.cancel(timer);
  cert_timers_.clear();
}

void ControlPlane::recover() {
  if (!crashed_) return;
  crashed_ = false;
  cpm_.recoveries->inc();
  record_event(obs::EventKind::kControlPlane, "control-plane", "recover");
  recovered_at_ = sim_.now();
  pending_reconverge_ = true;
  // Certificates that lapsed during the outage are re-issued first; live
  // ones get their rotation timers re-armed.
  for (auto& [service, cert] : certs_) {
    if (!cert.valid_at(sim_.now())) {
      issue_certificate(service);
      cpm_.cert_rotations->inc();
    } else {
      schedule_cert_rotation(service);
    }
  }
  if (started_) {
    poll_timer_ =
        sim_.schedule_after(poll_interval_, [this] { poll_registry(); });
  }
  // Paced, jittered reconvergence: sidecar i's push launches at
  // i * pacing + uniform(0, pacing), so a mesh-wide resync is a ramp,
  // not a thundering herd.
  begin_epoch();
  const sim::Duration pacing = policies_.cp.reconverge_pacing;
  for (std::size_t i = 0; i < sidecars_.size(); ++i) {
    Sidecar& sidecar = *sidecars_[i];
    const std::string pod = sidecar.pod().name();
    sim::Duration delay = static_cast<sim::Duration>(i) * pacing;
    if (pacing > 0) {
      delay += static_cast<sim::Duration>(pace_rng_.uniform() *
                                          static_cast<double>(pacing));
    }
    if (delay <= 0) {
      launch_push(sidecar);
      continue;
    }
    PushState& state = push_state_[pod];
    cancel_push_timers(state);
    state.retry_timer = sim_.schedule_after(delay, [this, pod] {
      const auto it = push_state_.find(pod);
      if (it == push_state_.end()) return;
      it->second.retry_timer = sim::kInvalidEventId;
      if (crashed_) return;
      Sidecar* sidecar = sidecar_for(pod);
      if (sidecar != nullptr) launch_push(*sidecar);
    });
  }
}

void ControlPlane::set_partitioned(const std::string& pod_name,
                                   bool partitioned) {
  PushState& state = push_state_[pod_name];
  if (state.partitioned == partitioned) return;
  state.partitioned = partitioned;
  record_event(obs::EventKind::kControlPlane, "push:" + pod_name,
               partitioned ? "partitioned" : "healed");
  if (!partitioned && !crashed_ && state.acked_epoch < epoch_) {
    // Healed while stale: revalidate immediately.
    Sidecar* sidecar = sidecar_for(pod_name);
    if (sidecar != nullptr) launch_push(*sidecar);
  }
}

void ControlPlane::set_push_loss(double probability) {
  policies_.cp.push_loss = std::clamp(probability, 0.0, 1.0);
}

void ControlPlane::update_staleness_gauges() {
  registry_.gauge("cp_discovery_staleness_ms")
      .set(sim::to_seconds(discovery_staleness()) * 1e3);
  for (const auto& [service, cert] : certs_) {
    const double seconds =
        cert.expires_at > sim_.now()
            ? sim::to_seconds(cert.expires_at - sim_.now())
            : 0.0;
    registry_.gauge("cert_seconds_to_expiry", {{"service", service}})
        .set(seconds);
  }
}

namespace {

/// Does `service`'s scope admit `cluster`? No scope entry = admit all.
bool scope_allows(
    const std::map<std::string, std::vector<std::string>>& scopes,
    const std::string& service, const std::string& cluster) {
  const auto it = scopes.find(service);
  if (it == scopes.end()) return true;
  return std::find(it->second.begin(), it->second.end(), cluster) !=
         it->second.end();
}

}  // namespace

bool ControlPlane::mtls_enabled_for(const std::string& service) const {
  const auto it = policies_.mtls_overrides.find(service);
  return it != policies_.mtls_overrides.end() ? it->second
                                              : policies_.tls.enabled;
}

SidecarConfig ControlPlane::compile_config(const Sidecar& sidecar) {
  SidecarConfig config;
  config.service_name = sidecar.config().service_name;
  // Listener identity is deliberately left at defaults: apply_config
  // pins those fields to the live sidecar's values and the config
  // fingerprint excludes them (see hash_policy_section), so a compiled
  // config and the applied one fingerprint identically either way.
  config.epoch = epoch_;
  const auto cert_it = certs_.find(config.service_name);
  if (cert_it != certs_.end()) config.identity_cert = cert_it->second;
  config.retry = policies_.retry;
  config.request_timeout = policies_.request_timeout;
  config.admission = policies_.admission;
  config.authorization = policies_.authorization;
  config.class_policies = policies_.class_policies;
  config.transport_mss = policies_.transport_mss;
  config.max_pool_connections = policies_.max_pool_connections;
  config.upstream_connection_hook = policies_.upstream_connection_hook;
  config.proxy_overhead_base = policies_.proxy_overhead_base;
  config.proxy_overhead_jitter = policies_.proxy_overhead_jitter;
  // Server side of mTLS: this sidecar's inbound listener accepts TLS iff
  // its own service resolves to mtls-on. The crypto cost knobs travel
  // with the config either way so a later override flip is a pure delta.
  config.tls = policies_.tls;
  config.tls.enabled = mtls_enabled_for(config.service_name);

  const std::string pod_name = sidecar.pod().name();
  for (const cluster::ServiceInfo* info : cluster_.registry().services()) {
    if (!scope_allows(policies_.cluster_scopes, config.service_name,
                      info->name)) {
      continue;
    }
    ClusterSpec spec;
    spec.name = info->name;
    spec.endpoints = info->endpoints;
    // Client side of mTLS: initiate TLS to clusters whose *target*
    // service runs an mTLS-accepting inbound listener.
    spec.mtls = mtls_enabled_for(info->name);
    spec.breaker = policies_.breaker;
    spec.health_check = policies_.health_check;
    spec.lb = policies_.default_lb;
    const auto lb_it = policies_.lb_overrides.find(info->name);
    if (lb_it != policies_.lb_overrides.end()) spec.lb = lb_it->second;
    if (policies_.subset.enabled && policies_.subset.subset_size > 0 &&
        static_cast<std::size_t>(policies_.subset.subset_size) <
            spec.endpoints.size()) {
      // Every sidecar whose scope admits this cluster subscribes to it;
      // the subset function is pure, so recomputing it per compile gives
      // every subscriber a consistent view of the same assignment.
      std::vector<std::string> subscribers;
      subscribers.reserve(sidecars_.size());
      for (const auto& other : sidecars_) {
        if (scope_allows(policies_.cluster_scopes,
                         other->config().service_name, info->name)) {
          subscribers.push_back(other->pod().name());
        }
      }
      std::sort(subscribers.begin(), subscribers.end());
      const auto subsets = compute_endpoint_subsets(
          info->name, spec.endpoints, subscribers,
          policies_.subset.subset_size);
      const auto sub_it = subsets.find(pod_name);
      if (sub_it != subsets.end() &&
          sub_it->second.size() < spec.endpoints.size()) {
        std::vector<cluster::Endpoint> chosen;
        chosen.reserve(sub_it->second.size());
        for (const std::size_t index : sub_it->second) {
          chosen.push_back(spec.endpoints[index]);
        }
        if (cpm_.subset_assignments != nullptr) {
          cpm_.subset_assignments->inc(chosen.size());
        }
        if (cpm_.subset_repairs != nullptr &&
            chosen.size() >
                static_cast<std::size_t>(policies_.subset.subset_size)) {
          // Aperture gives exactly subset_size endpoints; anything above
          // that was grafted on by the coverage-repair pass.
          cpm_.subset_repairs->inc(
              chosen.size() -
              static_cast<std::size_t>(policies_.subset.subset_size));
        }
        spec.endpoints = std::move(chosen);
      }
    }
    config.clusters.emplace(info->name, std::move(spec));
  }
  if (compile_mutator_) compile_mutator_(sidecar.pod().name(), config);
  return config;
}

Certificate ControlPlane::issue_certificate(const std::string& service) {
  Certificate cert;
  cert.serial = next_serial_++;
  cert.spiffe_id = "spiffe://cluster.local/ns/default/sa/" + service;
  cert.issued_at = sim_.now();
  cert.expires_at = sim_.now() + policies_.certificate_lifetime;
  certs_[service] = cert;
  registry_.gauge("cert_seconds_to_expiry", {{"service", service}})
      .set(sim::to_seconds(policies_.certificate_lifetime));
  schedule_cert_rotation(service);
  return cert;
}

void ControlPlane::schedule_cert_rotation(const std::string& service) {
  const double ahead = policies_.cp.cert_refresh_ahead;
  if (ahead <= 0.0 || crashed_) return;
  const auto it = certs_.find(service);
  if (it == certs_.end()) return;
  const auto timer_it = cert_timers_.find(service);
  if (timer_it != cert_timers_.end()) {
    sim_.cancel(timer_it->second);
    cert_timers_.erase(timer_it);
  }
  const auto refresh_margin = static_cast<sim::Duration>(
      ahead * static_cast<double>(policies_.certificate_lifetime));
  // Deterministic per-service splay (up to half the refresh margin) so
  // rotations issued at the same instant — e.g. the re-issue burst at
  // control-plane recovery — do not renew as a synchronized thundering
  // herd forever after.
  std::uint64_t splay_hash = 1469598103934665603ull;
  for (const char c : service) {
    splay_hash = (splay_hash ^ static_cast<unsigned char>(c)) *
                 1099511628211ull;
  }
  const auto splay = static_cast<sim::Duration>(
      static_cast<double>(splay_hash % 1024) / 2048.0 *
      static_cast<double>(refresh_margin));
  const sim::Time rotate_at = it->second.expires_at - refresh_margin + splay;
  const sim::Duration delay = std::max<sim::Duration>(0, rotate_at - sim_.now());
  cert_timers_[service] = sim_.schedule_after(delay, [this, service] {
    cert_timers_.erase(service);
    if (crashed_) return;
    issue_certificate(service);
    cpm_.cert_rotations->inc();
    record_event(obs::EventKind::kControlPlane, "cert:" + service,
                 "rotated");
    // The new serial changes the affected sidecars' config fingerprint;
    // the delta-aware push delivers only to them.
    push_config();
  });
}

void ControlPlane::record_event(obs::EventKind kind,
                                const std::string& subject,
                                const std::string& detail) {
  telemetry_.record_event(sim_.now(), kind, subject, detail);
}

const Certificate* ControlPlane::certificate(const std::string& service) const {
  const auto it = certs_.find(service);
  return it == certs_.end() ? nullptr : &it->second;
}

Sidecar* ControlPlane::sidecar_for(const std::string& pod_name) {
  for (const auto& sidecar : sidecars_) {
    if (sidecar->pod().name() == pod_name) return sidecar.get();
  }
  return nullptr;
}

}  // namespace meshnet::mesh
