#include "mesh/circuit_breaker.h"

namespace meshnet::mesh {

std::string_view circuit_state_name(CircuitState state) noexcept {
  switch (state) {
    case CircuitState::kClosed:
      return "closed";
    case CircuitState::kOpen:
      return "open";
    case CircuitState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {}

bool CircuitBreaker::allow_request(sim::Time now) {
  if (config_.consecutive_failures == 0) return true;  // disabled
  switch (state_) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kOpen:
      if (now - opened_at_ >= config_.open_duration) {
        state_ = CircuitState::kHalfOpen;
        probes_in_flight_ = 0;
      } else {
        return false;
      }
      [[fallthrough]];
    case CircuitState::kHalfOpen:
      if (probes_in_flight_ < config_.half_open_probes) {
        ++probes_in_flight_;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::on_success(sim::Time /*now*/) {
  if (config_.consecutive_failures == 0) return;
  failures_ = 0;
  if (state_ == CircuitState::kHalfOpen) {
    state_ = CircuitState::kClosed;
    probes_in_flight_ = 0;
  }
}

void CircuitBreaker::on_failure(sim::Time now) {
  if (config_.consecutive_failures == 0) return;
  if (state_ == CircuitState::kHalfOpen) {
    open(now);
    return;
  }
  if (state_ == CircuitState::kClosed) {
    ++failures_;
    if (failures_ >= config_.consecutive_failures) open(now);
  }
}

void CircuitBreaker::open(sim::Time now) {
  state_ = CircuitState::kOpen;
  opened_at_ = now;
  failures_ = 0;
  probes_in_flight_ = 0;
  ++times_opened_;
}

}  // namespace meshnet::mesh
