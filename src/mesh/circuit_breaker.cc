#include "mesh/circuit_breaker.h"

namespace meshnet::mesh {

std::string_view circuit_state_name(CircuitState state) noexcept {
  switch (state) {
    case CircuitState::kClosed:
      return "closed";
    case CircuitState::kOpen:
      return "open";
    case CircuitState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {}

bool CircuitBreaker::allow_request(sim::Time now) {
  if (config_.consecutive_failures == 0) return true;  // disabled
  switch (state_) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kOpen:
      if (now - opened_at_ >= config_.open_duration) {
        probes_in_flight_ = 0;
        transition(CircuitState::kHalfOpen, now);
      } else {
        return false;
      }
      [[fallthrough]];
    case CircuitState::kHalfOpen:
      if (probes_in_flight_ < config_.half_open_probes) {
        ++probes_in_flight_;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::on_success(sim::Time now) {
  if (config_.consecutive_failures == 0) return;
  failures_ = 0;
  if (state_ == CircuitState::kHalfOpen) {
    probes_in_flight_ = 0;
    transition(CircuitState::kClosed, now);
  }
}

void CircuitBreaker::on_failure(sim::Time now) {
  if (config_.consecutive_failures == 0) return;
  if (state_ == CircuitState::kHalfOpen) {
    open(now);
    return;
  }
  if (state_ == CircuitState::kClosed) {
    ++failures_;
    if (failures_ >= config_.consecutive_failures) open(now);
  }
}

void CircuitBreaker::open(sim::Time now) {
  opened_at_ = now;
  failures_ = 0;
  probes_in_flight_ = 0;
  ++times_opened_;
  transition(CircuitState::kOpen, now);
}

void CircuitBreaker::transition(CircuitState to, sim::Time at) {
  const CircuitState from = state_;
  state_ = to;
  if (transition_hook_ && from != to) transition_hook_(from, to, at);
}

}  // namespace meshnet::mesh
