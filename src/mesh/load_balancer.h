#pragma once

// Load-balancing policies for picking an upstream endpoint (paper §2:
// "load balancing between replicas"; ablated in bench_lb_policies).
//
// Balancers receive the candidate endpoints *after* subset and health
// filtering, plus a view of live per-endpoint state (outstanding request
// counts) maintained by the sidecar's upstream manager.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/service_registry.h"
#include "sim/random.h"

namespace meshnet::mesh {

enum class LbPolicy {
  kRoundRobin,
  kRandom,
  kLeastRequest,
  kWeightedRoundRobin,  ///< weight from endpoint label "weight" (default 1)
};

std::string_view lb_policy_name(LbPolicy policy) noexcept;

/// Live endpoint state exposed to balancers.
struct LbContext {
  /// Outstanding (in-flight) requests per candidate, parallel to the
  /// candidates vector handed to pick().
  std::function<std::uint64_t(const cluster::Endpoint&)> active_requests;
};

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  virtual std::string name() const = 0;

  /// Picks one endpoint from `candidates` (never empty). Returned pointer
  /// aliases into `candidates`.
  virtual const cluster::Endpoint* pick(
      const std::vector<const cluster::Endpoint*>& candidates,
      const LbContext& ctx) = 0;
};

class RoundRobinBalancer final : public LoadBalancer {
 public:
  std::string name() const override { return "round-robin"; }
  const cluster::Endpoint* pick(
      const std::vector<const cluster::Endpoint*>& candidates,
      const LbContext& ctx) override;

 private:
  std::uint64_t next_ = 0;
};

class RandomBalancer final : public LoadBalancer {
 public:
  explicit RandomBalancer(std::uint64_t seed);
  std::string name() const override { return "random"; }
  const cluster::Endpoint* pick(
      const std::vector<const cluster::Endpoint*>& candidates,
      const LbContext& ctx) override;

 private:
  sim::RngStream rng_;
};

/// Power-of-two-choices least-request (Envoy's default flavor).
class LeastRequestBalancer final : public LoadBalancer {
 public:
  explicit LeastRequestBalancer(std::uint64_t seed);
  std::string name() const override { return "least-request"; }
  const cluster::Endpoint* pick(
      const std::vector<const cluster::Endpoint*>& candidates,
      const LbContext& ctx) override;

 private:
  sim::RngStream rng_;
};

/// Smooth weighted round robin (nginx algorithm); weights come from the
/// endpoint label "weight" (default 1, minimum 1).
class WeightedRoundRobinBalancer final : public LoadBalancer {
 public:
  std::string name() const override { return "weighted-round-robin"; }
  const cluster::Endpoint* pick(
      const std::vector<const cluster::Endpoint*>& candidates,
      const LbContext& ctx) override;

 private:
  /// Current credit per endpoint, keyed by pod name.
  std::vector<std::pair<std::string, double>> credit_;
  double credit_of(const std::string& pod) const;
  void set_credit(const std::string& pod, double value);
};

std::unique_ptr<LoadBalancer> make_balancer(LbPolicy policy,
                                            std::uint64_t seed);

}  // namespace meshnet::mesh
