#include "mesh/builtin_filters.h"

#include <algorithm>

namespace meshnet::mesh {

TracingFilter::TracingFilter(Tracer& tracer, sim::Simulator& sim,
                             std::string service)
    : tracer_(tracer), sim_(sim), service_(std::move(service)) {}

FilterStatus TracingFilter::on_request(RequestContext& ctx) {
  if (ctx.request.request_id().empty()) {
    ctx.request.set_request_id(http::generate_request_id());
  }
  const TraceContext parent = TraceContext::extract(ctx.request.headers);
  ctx.span = tracer_.start_span(
      service_,
      std::string(ctx.direction == FilterDirection::kInbound ? "in " : "out ") +
          ctx.request.method + " " + ctx.request.path,
      parent, sim_.now());
  ctx.span_active = true;
  TraceContext child;
  child.trace_id = ctx.span.trace_id;
  child.span_id = ctx.span.span_id;
  child.inject(ctx.request.headers, ctx.span.parent_span_id);
  return FilterStatus::kContinue;
}

void TracingFilter::on_response(RequestContext& ctx,
                                http::HttpResponse& response) {
  if (!ctx.span_active) return;
  ctx.span.error = response.status >= 500;
  tracer_.finish_span(std::move(ctx.span), sim_.now());
  ctx.span_active = false;
}

FilterStatus SourceIdentityFilter::on_request(RequestContext& ctx) {
  if (ctx.direction == FilterDirection::kOutbound) {
    ctx.request.headers.set(http::headers::Id::kMeshSource, service_);
  }
  return FilterStatus::kContinue;
}

FilterStatus AuthorizationFilter::on_request(RequestContext& ctx) {
  if (ctx.direction != FilterDirection::kInbound || policies_ == nullptr) {
    return FilterStatus::kContinue;
  }
  const auto it = policies_->find(service_);
  if (it == policies_->end()) return FilterStatus::kContinue;  // allow all
  const std::string source =
      ctx.request.headers.get_or(http::headers::Id::kMeshSource, "");
  const auto& allowed = it->second;
  if (std::find(allowed.begin(), allowed.end(), source) != allowed.end()) {
    return FilterStatus::kContinue;
  }
  ++denied_;
  http::HttpResponse deny;
  deny.status = 403;
  deny.body = "RBAC: access denied for source '" + source + "'";
  ctx.local_response = std::move(deny);
  return FilterStatus::kStopIteration;
}

}  // namespace meshnet::mesh
