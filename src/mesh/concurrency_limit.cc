#include "mesh/concurrency_limit.h"

#include <algorithm>

namespace meshnet::mesh {

ConcurrencyLimit::ConcurrencyLimit(ConcurrencyLimitConfig config)
    : config_(config) {
  config_.min_limit = std::max<std::uint32_t>(1, config_.min_limit);
  config_.max_limit = std::max(config_.max_limit, config_.min_limit);
  limit_ = std::clamp(config_.initial_limit, config_.min_limit,
                      config_.max_limit);
  limit_f_ = static_cast<double>(limit_);
}

void ConcurrencyLimit::on_start() noexcept {
  ++in_flight_;
  if (in_flight_ >= limit_) limit_hit_ = true;
}

void ConcurrencyLimit::on_complete(sim::Duration latency, sim::Time now) {
  if (in_flight_ > 0) --in_flight_;

  estimate_ = estimate_ == 0
                  ? latency
                  : static_cast<sim::Duration>(
                        config_.estimate_alpha * static_cast<double>(latency) +
                        (1.0 - config_.estimate_alpha) *
                            static_cast<double>(estimate_));

  if (window_samples_ == 0 && window_sum_ == 0 && window_start_ == 0) {
    window_start_ = now;  // first sample ever opens the first window
  }
  window_sum_ += latency;
  ++window_samples_;
  if (now - window_start_ >= config_.window) close_window(now);
}

void ConcurrencyLimit::close_window(sim::Time now) {
  const std::uint32_t samples = window_samples_;
  const sim::Duration mean =
      samples == 0 ? 0 : window_sum_ / static_cast<sim::Duration>(samples);
  const bool pressed = limit_hit_;
  window_start_ = now;
  window_sum_ = 0;
  window_samples_ = 0;
  limit_hit_ = in_flight_ >= limit_;

  if (samples < config_.min_window_samples) return;

  // Baseline: min of recent window means, i.e. the least-loaded latency
  // the service has recently shown. The current mean participates, so the
  // first window is its own baseline (gradient 1.0 -> no decrease).
  sim::Duration baseline = mean;
  for (const sim::Duration m : recent_means_) baseline = std::min(baseline, m);
  if (recent_means_.size() < config_.baseline_windows) {
    recent_means_.push_back(mean);
  } else if (!recent_means_.empty()) {
    recent_means_[recent_next_] = mean;
    recent_next_ = (recent_next_ + 1) % recent_means_.size();
  }

  const double gradient = baseline == 0
                              ? 1.0
                              : static_cast<double>(mean) /
                                    static_cast<double>(baseline);
  const std::uint32_t before = limit_;
  if (gradient > config_.latency_tolerance) {
    limit_f_ = std::max(static_cast<double>(config_.min_limit),
                        limit_f_ * config_.multiplicative_decrease);
  } else if (pressed) {
    limit_f_ = std::min(static_cast<double>(config_.max_limit),
                        limit_f_ + config_.additive_increase);
  }
  limit_ = std::clamp(static_cast<std::uint32_t>(limit_f_),
                      config_.min_limit, config_.max_limit);
  if (limit_ > before) ++increases_;
  if (limit_ < before) ++decreases_;
  if (limit_ != before && on_limit_change_) on_limit_change_(limit_);
}

}  // namespace meshnet::mesh
