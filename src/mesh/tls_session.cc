#include "mesh/tls_session.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace meshnet::mesh {

namespace {

// Big-endian fixed-width primitives. Times ride as two's-complement u64.

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void append_u16(std::string& out, std::uint16_t v) {
  append_u8(out, static_cast<std::uint8_t>(v >> 8));
  append_u8(out, static_cast<std::uint8_t>(v));
}

void append_u24(std::string& out, std::uint32_t v) {
  append_u8(out, static_cast<std::uint8_t>(v >> 16));
  append_u8(out, static_cast<std::uint8_t>(v >> 8));
  append_u8(out, static_cast<std::uint8_t>(v));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    append_u8(out, static_cast<std::uint8_t>(v >> shift));
  }
}

/// Strict bounds-checked reader; any overrun poisons it and decode
/// returns nullopt.
struct Reader {
  std::string_view data;
  bool ok = true;

  std::uint8_t u8() {
    if (data.size() < 1) {
      ok = false;
      return 0;
    }
    const auto v = static_cast<std::uint8_t>(data[0]);
    data.remove_prefix(1);
    return v;
  }

  std::uint16_t u16() {
    const auto hi = u8();
    const auto lo = u8();
    return static_cast<std::uint16_t>((hi << 8) | lo);
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | u8();
    return v;
  }

  std::string_view bytes(std::size_t n) {
    if (data.size() < n) {
      ok = false;
      return {};
    }
    const std::string_view v = data.substr(0, n);
    data.remove_prefix(n);
    return v;
  }

  /// Every byte consumed, nothing left over.
  bool done() const noexcept { return ok && data.empty(); }
};

sim::Time read_time(Reader& r) { return static_cast<sim::Time>(r.u64()); }

constexpr std::size_t kRecordHeaderBytes = 4;
constexpr std::size_t kTicketBytes = 24;
/// Bound on buffered 0-RTT records while a full handshake completes.
constexpr std::size_t kMaxEarlyRecords = 1024;

}  // namespace

bool is_known_tls_record_type(std::uint8_t type) noexcept {
  switch (static_cast<TlsRecordType>(type)) {
    case TlsRecordType::kClientHello:
    case TlsRecordType::kServerHello:
    case TlsRecordType::kFinished:
    case TlsRecordType::kAlert:
    case TlsRecordType::kAppData:
      return true;
  }
  return false;
}

std::string encode_tls_record(TlsRecordType type, std::string_view body) {
  assert(body.size() <= 0xFFFFFF && "record body exceeds u24 length");
  std::string out;
  out.reserve(kRecordHeaderBytes + body.size());
  append_u8(out, static_cast<std::uint8_t>(type));
  append_u24(out, static_cast<std::uint32_t>(body.size()));
  out.append(body);
  return out;
}

TlsRecordParser::TlsRecordParser(std::size_t max_body_bytes)
    : max_body_bytes_(max_body_bytes) {}

bool TlsRecordParser::feed(std::string_view data) {
  if (has_error()) return false;
  buffer_.append(data);
  while (buffer_.size() >= kRecordHeaderBytes) {
    const auto type = static_cast<std::uint8_t>(buffer_[0]);
    if (!is_known_tls_record_type(type)) {
      error_ = "unknown record type";
      return false;
    }
    const std::size_t length =
        (static_cast<std::size_t>(static_cast<std::uint8_t>(buffer_[1]))
         << 16) |
        (static_cast<std::size_t>(static_cast<std::uint8_t>(buffer_[2])) << 8) |
        static_cast<std::size_t>(static_cast<std::uint8_t>(buffer_[3]));
    if (length > max_body_bytes_) {
      error_ = "oversized record";
      return false;
    }
    if (buffer_.size() < kRecordHeaderBytes + length) break;
    // Move the record out before the callback: the handler may feed more
    // bytes (it never does today, but the codec should not care).
    const std::string record =
        buffer_.substr(kRecordHeaderBytes, length);
    buffer_.erase(0, kRecordHeaderBytes + length);
    if (on_record_) {
      on_record_(static_cast<TlsRecordType>(type), record);
      if (has_error()) return false;  // handler-induced reset + error
    }
  }
  return true;
}

void TlsRecordParser::reset() {
  buffer_.clear();
  error_.clear();
}

std::string encode_client_hello(const TlsClientHello& hello) {
  std::string out;
  append_u64(out, hello.cert_serial);
  append_u64(out, static_cast<std::uint64_t>(hello.cert_expires_at));
  const auto ticket_len = static_cast<std::uint16_t>(
      std::min<std::size_t>(hello.ticket.size(), 0xFFFF));
  append_u16(out, ticket_len);
  out.append(hello.ticket.data(), ticket_len);
  return out;
}

std::optional<TlsClientHello> decode_client_hello(std::string_view body) {
  Reader r{body};
  TlsClientHello hello;
  hello.cert_serial = r.u64();
  hello.cert_expires_at = read_time(r);
  const std::uint16_t ticket_len = r.u16();
  hello.ticket = std::string(r.bytes(ticket_len));
  if (!r.done()) return std::nullopt;
  return hello;
}

std::string encode_server_hello(const TlsServerHello& hello) {
  std::string out;
  append_u64(out, hello.cert_serial);
  append_u64(out, static_cast<std::uint64_t>(hello.cert_expires_at));
  append_u8(out, hello.resumed ? 1 : 0);
  const auto ticket_len = static_cast<std::uint16_t>(
      std::min<std::size_t>(hello.ticket.size(), 0xFFFF));
  append_u16(out, ticket_len);
  out.append(hello.ticket.data(), ticket_len);
  return out;
}

std::optional<TlsServerHello> decode_server_hello(std::string_view body) {
  Reader r{body};
  TlsServerHello hello;
  hello.cert_serial = r.u64();
  hello.cert_expires_at = read_time(r);
  const std::uint8_t resumed = r.u8();
  if (resumed > 1) return std::nullopt;
  hello.resumed = resumed == 1;
  const std::uint16_t ticket_len = r.u16();
  hello.ticket = std::string(r.bytes(ticket_len));
  if (!r.done()) return std::nullopt;
  return hello;
}

std::string encode_session_ticket(const TlsSessionTicket& ticket) {
  std::string out;
  out.reserve(kTicketBytes);
  append_u64(out, ticket.cert_serial);
  append_u64(out, static_cast<std::uint64_t>(ticket.issued_at));
  append_u64(out, ticket.nonce);
  return out;
}

std::optional<TlsSessionTicket> decode_session_ticket(std::string_view body) {
  if (body.size() != kTicketBytes) return std::nullopt;
  Reader r{body};
  TlsSessionTicket ticket;
  ticket.cert_serial = r.u64();
  ticket.issued_at = read_time(r);
  ticket.nonce = r.u64();
  if (!r.done()) return std::nullopt;
  return ticket;
}

// ---------------------------------------------------------------------------

void TlsSessionCache::put(const std::string& key, std::string ticket) {
  if (capacity_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(ticket);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(ticket));
  index_.emplace(key, lru_.begin());
  evict_to_capacity();
}

std::string TlsSessionCache::get(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return {};
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void TlsSessionCache::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  evict_to_capacity();
}

void TlsSessionCache::evict_to_capacity() {
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    if (evictions_ != nullptr) evictions_->inc();
  }
}

TlsRuntime::TlsRuntime(obs::MetricRegistry* registry,
                       std::size_t cache_capacity)
    : cache_(cache_capacity) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricRegistry>();
    registry = owned_registry_.get();
  }
  metrics_.handshakes_full = &registry->counter("tls_handshakes_full_total");
  metrics_.handshakes_resumed =
      &registry->counter("tls_handshakes_resumed_total");
  metrics_.handshake_failures =
      &registry->counter("tls_handshake_failures_total");
  metrics_.tickets_issued = &registry->counter("tls_tickets_issued_total");
  metrics_.resumptions_rejected =
      &registry->counter("tls_resumptions_rejected_total");
  metrics_.session_cache_evictions =
      &registry->counter("tls_session_cache_evictions_total");
  metrics_.records_encrypted =
      &registry->counter("tls_records_encrypted_total");
  metrics_.records_decrypted =
      &registry->counter("tls_records_decrypted_total");
  metrics_.bytes_encrypted = &registry->counter("tls_bytes_encrypted_total");
  metrics_.bytes_decrypted = &registry->counter("tls_bytes_decrypted_total");
  metrics_.alerts_sent = &registry->counter("tls_alerts_total");
  metrics_.handshake_ns = &registry->histogram("tls_handshake_ns");
  cache_ = TlsSessionCache(cache_capacity, metrics_.session_cache_evictions);
}

// ---------------------------------------------------------------------------

TlsChannel::TlsChannel(sim::Simulator& sim, Role role, const TlsParams* params,
                       const Certificate* local_cert, TlsRuntime* runtime,
                       std::string peer_key)
    : sim_(sim),
      role_(role),
      params_(params),
      local_cert_(local_cert),
      runtime_(runtime),
      peer_key_(std::move(peer_key)),
      state_(role == Role::kClient ? State::kIdle : State::kWaitClientHello),
      record_parser_(params->max_record_bytes) {
  assert(params_ != nullptr && local_cert_ != nullptr && runtime_ != nullptr);
  record_parser_.set_on_record(
      [this](TlsRecordType type, std::string_view body) {
        on_record(type, body);
      });
}

TlsChannel::~TlsChannel() { cancel_timeout(); }

void TlsChannel::start() {
  handshake_start_ = sim_.now();
  auto self = shared_from_this();
  timeout_timer_ =
      sim_.schedule_after(params_->handshake_timeout, [self] {
        self->timeout_timer_ = sim::kInvalidEventId;
        if (self->closed_ || self->established() || self->failed()) return;
        self->fail("tls handshake timeout", false);
      });
  if (role_ == Role::kClient) {
    TlsClientHello hello;
    hello.cert_serial = local_cert_->serial;
    hello.cert_expires_at = local_cert_->expires_at;
    if (params_->session_resumption && !peer_key_.empty()) {
      hello.ticket = runtime_->session_cache().get(peer_key_);
    }
    offered_ticket_ = !hello.ticket.empty();
    transition(State::kWaitServerHello);
    queue_wire(encode_tls_record(TlsRecordType::kClientHello,
                                 encode_client_hello(hello)),
               0);
  }
}

void TlsChannel::on_wire_data(std::string_view data) {
  if (closed_ || failed()) return;
  // The record handler can fail the channel, which schedules owner
  // callbacks; keep ourselves alive across the whole feed.
  auto self = shared_from_this();
  if (!record_parser_.feed(data) && !failed() && !closed_) {
    fail("tls record error: " + record_parser_.error(), true);
  }
}

void TlsChannel::send_app_data(std::string data) {
  if (closed_ || failed() || data.empty()) return;
  const bool zero_rtt = role_ == Role::kClient && offered_ticket_ &&
                        state_ == State::kWaitServerHello;
  if (established() || zero_rtt) {
    encrypt_and_send(std::move(data));
  } else {
    pending_app_.push_back(std::move(data));
  }
}

void TlsChannel::shutdown() {
  if (closed_) return;
  closed_ = true;
  cancel_timeout();
  send_wire_ = nullptr;
  on_plaintext_ = nullptr;
  on_established_ = nullptr;
  on_error_ = nullptr;
  state_observer_ = nullptr;
}

void TlsChannel::transition(State next) {
  state_ = next;
  if (state_observer_) state_observer_(next);
}

void TlsChannel::fail(const std::string& reason, bool send_alert) {
  if (closed_ || failed()) return;
  if (send_alert) {
    runtime_->metrics().alerts_sent->inc();
    queue_wire(encode_tls_record(TlsRecordType::kAlert, reason), 0);
  }
  error_ = reason;
  cancel_timeout();
  const bool pre_established = state_ != State::kEstablished;
  transition(State::kFailed);
  if (pre_established) runtime_->metrics().handshake_failures->inc();
  // Deliver the error through a zero-delay event, never re-entrantly
  // from inside a transport data callback (the owner aborts the
  // connection in response, which the transport does not tolerate
  // mid-delivery).
  auto self = shared_from_this();
  sim_.schedule_after(0, [self] {
    if (self->closed_) return;
    if (self->on_error_) self->on_error_(self->error_);
  });
}

void TlsChannel::on_record(TlsRecordType type, std::string_view body) {
  if (closed_ || failed()) return;
  switch (type) {
    case TlsRecordType::kClientHello:
      if (role_ != Role::kServer) {
        fail("unexpected client hello", true);
        return;
      }
      handle_client_hello(body);
      return;
    case TlsRecordType::kServerHello:
      if (role_ != Role::kClient) {
        fail("unexpected server hello", true);
        return;
      }
      handle_server_hello(body);
      return;
    case TlsRecordType::kFinished:
      handle_finished();
      return;
    case TlsRecordType::kAlert:
      fail("tls alert from peer: " + std::string(body), false);
      return;
    case TlsRecordType::kAppData:
      handle_app_data(body);
      return;
  }
  fail("unknown record type", true);
}

void TlsChannel::handle_client_hello(std::string_view body) {
  if (state_ != State::kWaitClientHello) {
    fail("client hello out of order", true);
    return;
  }
  const auto hello = decode_client_hello(body);
  if (!hello) {
    fail("malformed client hello", true);
    return;
  }
  const sim::Time now = sim_.now();
  if (local_cert_->serial == 0 || !local_cert_->valid_at(now)) {
    fail("server certificate invalid", true);
    return;
  }
  if (hello->cert_serial == 0 || hello->cert_expires_at <= now) {
    fail("peer certificate expired", true);
    return;
  }
  bool resumed = false;
  if (!hello->ticket.empty()) {
    bool accepted = false;
    if (params_->session_resumption) {
      const auto ticket = decode_session_ticket(hello->ticket);
      accepted = ticket.has_value() &&
                 ticket->cert_serial == local_cert_->serial &&
                 now - ticket->issued_at < params_->ticket_lifetime;
    }
    if (accepted) {
      resumed = true;
    } else {
      runtime_->metrics().resumptions_rejected->inc();
    }
  }
  TlsServerHello reply;
  reply.cert_serial = local_cert_->serial;
  reply.cert_expires_at = local_cert_->expires_at;
  reply.resumed = resumed;
  if (params_->session_resumption) {
    TlsSessionTicket ticket;
    ticket.cert_serial = local_cert_->serial;
    ticket.issued_at = now;
    ticket.nonce = runtime_->next_ticket_nonce();
    reply.ticket = encode_session_ticket(ticket);
    runtime_->metrics().tickets_issued->inc();
  }
  resumed_ = resumed;
  const sim::Duration cpu = resumed ? params_->handshake_cpu_resumed
                                    : params_->handshake_cpu_server;
  queue_wire(encode_tls_record(TlsRecordType::kServerHello,
                               encode_server_hello(reply)),
             cpu, /*handshake_cpu=*/true);
  if (resumed) {
    become_established();
  } else {
    transition(State::kWaitFinished);
  }
}

void TlsChannel::handle_server_hello(std::string_view body) {
  if (state_ != State::kWaitServerHello) {
    fail("server hello out of order", true);
    return;
  }
  const auto hello = decode_server_hello(body);
  if (!hello) {
    fail("malformed server hello", true);
    return;
  }
  if (hello->cert_serial == 0 || hello->cert_expires_at <= sim_.now()) {
    fail("peer certificate expired", true);
    return;
  }
  resumed_ = hello->resumed;
  if (params_->session_resumption && !hello->ticket.empty() &&
      !peer_key_.empty()) {
    runtime_->session_cache().put(peer_key_, hello->ticket);
  }
  const sim::Duration cpu = resumed_ ? params_->handshake_cpu_resumed
                                     : params_->handshake_cpu_client;
  queue_wire(encode_tls_record(TlsRecordType::kFinished, {}), cpu,
             /*handshake_cpu=*/true);
  become_established();
}

void TlsChannel::handle_finished() {
  if (role_ != Role::kServer) {
    fail("unexpected finished", true);
    return;
  }
  if (state_ == State::kWaitFinished) {
    become_established();
    return;
  }
  // A resumed server establishes on the ClientHello; the client's
  // Finished (it always sends one) arrives afterwards and is a no-op.
  if (established() && resumed_) return;
  fail("finished out of order", true);
}

void TlsChannel::handle_app_data(std::string_view body) {
  if (established()) {
    deliver_plaintext(std::string(body));
    return;
  }
  if (role_ == Role::kServer && state_ == State::kWaitFinished) {
    // 0-RTT data from a client whose ticket we rejected: queue it and
    // process after Finished (instead of modelling a replay).
    if (early_records_.size() >= kMaxEarlyRecords) {
      fail("early data overflow", true);
      return;
    }
    early_records_.emplace_back(body);
    return;
  }
  fail("app data before handshake", true);
}

void TlsChannel::become_established() {
  cancel_timeout();
  transition(State::kEstablished);
  TlsMetrics& metrics = runtime_->metrics();
  if (role_ == Role::kServer) {
    (resumed_ ? metrics.handshakes_resumed : metrics.handshakes_full)->inc();
  } else {
    metrics.handshake_ns->record(
        static_cast<std::uint64_t>(sim_.now() - handshake_start_));
  }
  if (on_established_) on_established_(resumed_);
  while (!pending_app_.empty() && !failed() && !closed_) {
    std::string data = std::move(pending_app_.front());
    pending_app_.pop_front();
    encrypt_and_send(std::move(data));
  }
  while (!early_records_.empty() && !failed() && !closed_) {
    std::string body = std::move(early_records_.front());
    early_records_.pop_front();
    deliver_plaintext(std::move(body));
  }
}

void TlsChannel::encrypt_and_send(std::string data) {
  TlsMetrics& metrics = runtime_->metrics();
  std::string_view rest = data;
  while (!rest.empty()) {
    const std::size_t n = std::min(rest.size(), params_->max_record_bytes);
    const std::string_view chunk = rest.substr(0, n);
    rest.remove_prefix(n);
    metrics.records_encrypted->inc();
    metrics.bytes_encrypted->inc(n);
    queue_wire(encode_tls_record(TlsRecordType::kAppData, chunk),
               aead_cost(n));
  }
}

void TlsChannel::deliver_plaintext(std::string body) {
  TlsMetrics& metrics = runtime_->metrics();
  metrics.records_decrypted->inc();
  metrics.bytes_decrypted->inc(body.size());
  const sim::Duration cost = aead_cost(body.size());
  const sim::Time now = sim_.now();
  const sim::Time ready = std::max(now, rx_busy_until_) + cost;
  rx_busy_until_ = ready;
  if (ready <= now) {
    if (on_plaintext_) on_plaintext_(body);
    return;
  }
  auto self = shared_from_this();
  sim_.schedule_at(ready, [self, b = std::move(body)] {
    if (self->closed_ || self->failed()) return;
    if (self->on_plaintext_) self->on_plaintext_(b);
  });
}

sim::Duration TlsChannel::aead_cost(std::size_t body_bytes) const {
  return params_->aead_per_record +
         params_->aead_per_kb * static_cast<sim::Duration>(body_bytes) / 1024;
}

void TlsChannel::queue_wire(std::string bytes, sim::Duration cost,
                            bool handshake_cpu) {
  const sim::Time now = sim_.now();
  sim::Time ready;
  if (handshake_cpu && cost > 0) {
    // Asymmetric handshake crypto serializes on the owning sidecar's
    // crypto core: a reconnect wave's handshakes queue behind each
    // other, which is what makes a mesh-wide storm expensive.
    ready = std::max(runtime_->charge_handshake(now, cost), tx_busy_until_);
  } else {
    ready = std::max(now, tx_busy_until_) + cost;
  }
  tx_busy_until_ = ready;
  if (ready <= now) {
    if (send_wire_) send_wire_(std::move(bytes));
    return;
  }
  auto self = shared_from_this();
  sim_.schedule_at(ready, [self, b = std::move(bytes)] {
    if (self->closed_) return;
    if (self->send_wire_) self->send_wire_(b);
  });
}

void TlsChannel::cancel_timeout() {
  if (timeout_timer_ != sim::kInvalidEventId) {
    sim_.cancel(timeout_timer_);
    timeout_timer_ = sim::kInvalidEventId;
  }
}

std::string_view tls_state_name(TlsChannel::State state) noexcept {
  switch (state) {
    case TlsChannel::State::kIdle:
      return "idle";
    case TlsChannel::State::kWaitServerHello:
      return "wait-server-hello";
    case TlsChannel::State::kWaitClientHello:
      return "wait-client-hello";
    case TlsChannel::State::kWaitFinished:
      return "wait-finished";
    case TlsChannel::State::kEstablished:
      return "established";
    case TlsChannel::State::kFailed:
      return "failed";
  }
  return "unknown";
}

}  // namespace meshnet::mesh
