#pragma once

// HTTP fault-injection filter (Envoy's `fault` filter, simplified).
//
// Injects two kinds of faults into requests traversing the chain:
//   - abort: short-circuit a sampled fraction of requests with a local
//     error status, without ever contacting the upstream;
//   - delay: impose a fixed (plus optional exponential) extra latency on
//     a sampled fraction before the request proceeds.
//
// The draws come from a named RngStream so runs are deterministic and
// adding the filter never perturbs other consumers of randomness. This is
// the mesh-layer half of the chaos toolkit: link/pod faults live in
// src/faults/, request-level faults live here, both seeded.

#include <cstdint>
#include <memory>
#include <string>

#include "mesh/filter.h"
#include "sim/random.h"
#include "sim/time.h"

namespace meshnet::mesh {

struct FaultFilterConfig {
  /// Fraction of matching requests aborted with `abort_status` ([0,1]).
  double abort_fraction = 0.0;
  int abort_status = 503;

  /// Fraction of matching requests delayed ([0,1]).
  double delay_fraction = 0.0;
  /// Fixed component of the injected delay.
  sim::Duration delay = 0;
  /// Mean of an additional exponential component; 0 disables jitter.
  sim::Duration delay_jitter_mean = 0;

  /// Only requests whose path starts with this prefix are eligible.
  /// Empty matches every request.
  std::string path_prefix;

  /// Run seed for the filter's RNG stream.
  std::uint64_t seed = 0;
};

class FaultInjectionFilter final : public HttpFilter {
 public:
  /// `stream_name` disambiguates multiple fault filters in one run.
  explicit FaultInjectionFilter(FaultFilterConfig config,
                                std::string stream_name = "fault-filter");

  std::string name() const override { return "fault_injection"; }
  FilterStatus on_request(RequestContext& ctx) override;

  std::uint64_t aborts_injected() const noexcept { return aborts_; }
  std::uint64_t delays_injected() const noexcept { return delays_; }
  std::uint64_t requests_seen() const noexcept { return seen_; }

 private:
  FaultFilterConfig config_;
  sim::RngStream rng_;
  std::uint64_t seen_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t delays_ = 0;
};

}  // namespace meshnet::mesh
