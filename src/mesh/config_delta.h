#pragma once

// Incremental (xDS delta-style) config push (MESHSCALE, DESIGN.md §13).
//
// A full-snapshot push re-transmits every cluster and route to every
// sidecar on every epoch; at N services that is O(N) bytes per sidecar
// per endpoint flap, O(N^2) mesh-wide. A ConfigDelta carries only what
// changed since the sidecar's last *acked* config:
//
//   * per-cluster upserts (new or changed ClusterSpecs, compared by
//     hash_cluster_spec) and removals;
//   * per-route upserts/removals;
//   * the non-cluster "policy section" (retry/timeout/admission/...) as
//     one blob, only when its fingerprint changed.
//
// Safety over cleverness: a delta names the exact base it diffs against
// (base_hash) and the exact result it must produce (target_hash). The
// sidecar reconstructs the full candidate config, verifies both hashes,
// and funnels it through the same apply_config validation a full push
// uses — so delta and full push converge to identical fingerprints by
// construction. Any mismatch nacks with "delta-base-mismatch" and the
// control plane falls back to a full push for that sidecar.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mesh/sidecar.h"

namespace meshnet::mesh {

struct ConfigDelta {
  std::uint64_t epoch = 0;
  /// Fingerprint of the config this delta applies on top of (the
  /// sidecar's running config; the control plane tracks it per ack).
  std::uint64_t base_hash = 0;
  /// Fingerprint the reconstructed config must have.
  std::uint64_t target_hash = 0;

  /// Non-cluster, non-route fields changed; `policy` replaces them
  /// wholesale (its clusters/routes stay empty and are ignored).
  bool policy_changed = false;
  SidecarConfig policy;

  std::map<std::string, ClusterSpec> cluster_upserts;
  std::vector<std::string> cluster_removals;
  std::map<std::string, std::string> route_upserts;
  std::vector<std::string> route_removals;

  bool empty() const noexcept {
    return !policy_changed && cluster_upserts.empty() &&
           cluster_removals.empty() && route_upserts.empty() &&
           route_removals.empty();
  }
};

/// Diffs `target` against `base`. epoch/target_hash are taken from
/// `target`; base_hash from `base`.
ConfigDelta make_config_delta(const SidecarConfig& base,
                              const SidecarConfig& target);

/// Reconstructs the full config `delta` was diffed to produce. Pure;
/// does not validate (the caller runs apply_config on the result).
SidecarConfig apply_config_delta(const SidecarConfig& base,
                                 const ConfigDelta& delta);

/// Modeled wire size of a full-snapshot push / a delta push, in bytes.
/// Not a serialization — a stable cost model (string bytes + fixed
/// per-field costs) so the MESHSCALE experiment can compare transfer
/// volume deterministically across hosts.
std::size_t estimate_config_bytes(const SidecarConfig& config);
std::size_t estimate_delta_bytes(const ConfigDelta& delta);

}  // namespace meshnet::mesh
