#include "mesh/load_balancer.h"

#include <algorithm>

#include "util/strings.h"

namespace meshnet::mesh {

std::string_view lb_policy_name(LbPolicy policy) noexcept {
  switch (policy) {
    case LbPolicy::kRoundRobin:
      return "round-robin";
    case LbPolicy::kRandom:
      return "random";
    case LbPolicy::kLeastRequest:
      return "least-request";
    case LbPolicy::kWeightedRoundRobin:
      return "weighted-round-robin";
  }
  return "?";
}

const cluster::Endpoint* RoundRobinBalancer::pick(
    const std::vector<const cluster::Endpoint*>& candidates,
    const LbContext& /*ctx*/) {
  if (candidates.empty()) return nullptr;
  return candidates[next_++ % candidates.size()];
}

RandomBalancer::RandomBalancer(std::uint64_t seed) : rng_(seed, "lb-random") {}

const cluster::Endpoint* RandomBalancer::pick(
    const std::vector<const cluster::Endpoint*>& candidates,
    const LbContext& /*ctx*/) {
  if (candidates.empty()) return nullptr;
  return candidates[rng_.uniform_int(0, candidates.size() - 1)];
}

LeastRequestBalancer::LeastRequestBalancer(std::uint64_t seed)
    : rng_(seed, "lb-least-request") {}

const cluster::Endpoint* LeastRequestBalancer::pick(
    const std::vector<const cluster::Endpoint*>& candidates,
    const LbContext& ctx) {
  if (candidates.empty()) return nullptr;
  if (candidates.size() == 1 || !ctx.active_requests) return candidates[0];
  // Power of two choices: sample two distinct indices, keep the emptier.
  const std::uint64_t a = rng_.uniform_int(0, candidates.size() - 1);
  std::uint64_t b = rng_.uniform_int(0, candidates.size() - 2);
  if (b >= a) ++b;
  const std::uint64_t load_a = ctx.active_requests(*candidates[a]);
  const std::uint64_t load_b = ctx.active_requests(*candidates[b]);
  return load_a <= load_b ? candidates[a] : candidates[b];
}

double WeightedRoundRobinBalancer::credit_of(const std::string& pod) const {
  for (const auto& [name, value] : credit_) {
    if (name == pod) return value;
  }
  return 0.0;
}

void WeightedRoundRobinBalancer::set_credit(const std::string& pod,
                                            double value) {
  for (auto& [name, credit] : credit_) {
    if (name == pod) {
      credit = value;
      return;
    }
  }
  credit_.emplace_back(pod, value);
}

const cluster::Endpoint* WeightedRoundRobinBalancer::pick(
    const std::vector<const cluster::Endpoint*>& candidates,
    const LbContext& /*ctx*/) {
  if (candidates.empty()) return nullptr;
  // Smooth WRR: every pick, each candidate gains its weight in credit;
  // the highest-credit candidate is chosen and pays back the total.
  double total_weight = 0.0;
  const cluster::Endpoint* best = nullptr;
  double best_credit = 0.0;
  for (const cluster::Endpoint* ep : candidates) {
    const auto parsed = util::parse_u64(ep->label_or("weight", "1"));
    const double weight =
        parsed && *parsed > 0 ? static_cast<double>(*parsed) : 1.0;
    total_weight += weight;
    const double credit = credit_of(ep->pod_name) + weight;
    set_credit(ep->pod_name, credit);
    if (best == nullptr || credit > best_credit) {
      best = ep;
      best_credit = credit;
    }
  }
  set_credit(best->pod_name, best_credit - total_weight);
  return best;
}

std::unique_ptr<LoadBalancer> make_balancer(LbPolicy policy,
                                            std::uint64_t seed) {
  switch (policy) {
    case LbPolicy::kRandom:
      return std::make_unique<RandomBalancer>(seed);
    case LbPolicy::kLeastRequest:
      return std::make_unique<LeastRequestBalancer>(seed);
    case LbPolicy::kWeightedRoundRobin:
      return std::make_unique<WeightedRoundRobinBalancer>();
    case LbPolicy::kRoundRobin:
    default:
      return std::make_unique<RoundRobinBalancer>();
  }
}

}  // namespace meshnet::mesh
