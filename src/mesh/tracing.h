#pragma once

// Distributed tracing (paper §3.2 "better visibility").
//
// Sidecars create a span per request hop and propagate trace context via
// B3-style headers. The app runtime copies x-request-id and the b3 headers
// onto the sub-requests it spawns — exactly the cooperation Istio's
// bookinfo app performs — which is also what lets the provenance filter
// (core/) tie sub-requests back to the inbound request that caused them.
//
// The Tracer is a thin adapter over obs::SpanExporter: it owns id
// allocation and the start/finish API the filters use, while the exporter
// owns retention, sink fan-out, and the per-service span series in the
// unified metric registry.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "http/header_map.h"
#include "obs/span_exporter.h"
#include "sim/time.h"

namespace meshnet::mesh {

/// A span is exactly the exporter's record type; filters fill it in and
/// the exporter publishes it.
using Span = obs::SpanRecord;

/// Span context carried in HTTP headers.
struct TraceContext {
  std::string trace_id;
  std::string span_id;

  bool valid() const noexcept { return !trace_id.empty(); }

  static TraceContext extract(const http::HeaderMap& headers);
  void inject(http::HeaderMap& headers,
              const std::string& parent_span_id) const;
};

/// Allocates span ids and feeds finished spans to the exporter. One
/// tracer is shared mesh-wide (it stands in for the Jaeger/Zipkin backend
/// the control plane would export to).
class Tracer {
 public:
  /// Spans feed per-service series in `registry` when non-null.
  explicit Tracer(obs::MetricRegistry* registry = nullptr)
      : exporter_(registry) {}

  /// Starts a span; `parent` may be invalid (root span), in which case a
  /// fresh trace id is allocated.
  Span start_span(const std::string& service, const std::string& operation,
                  const TraceContext& parent, sim::Time now);

  void finish_span(Span span, sim::Time now);

  /// Retained finished spans (bounded by the retention limit).
  const std::vector<Span>& spans() const noexcept {
    return exporter_.spans();
  }
  std::size_t span_count() const noexcept { return exporter_.span_count(); }

  /// All spans belonging to one trace, in start order.
  std::vector<const Span*> trace(const std::string& trace_id) const;

  /// Keep only the most recent `limit` spans (memory bound for long
  /// runs); 0 disables retention (benches) — span *metrics* still flow to
  /// the registry, only storage is skipped.
  void set_retention(std::size_t limit) noexcept {
    exporter_.set_retention(limit);
  }

  void clear() { exporter_.clear(); }

  obs::SpanExporter& exporter() noexcept { return exporter_; }

 private:
  std::string next_id(std::string_view prefix);

  std::uint64_t counter_ = 0;
  obs::SpanExporter exporter_;
};

}  // namespace meshnet::mesh
