#pragma once

// Distributed tracing (paper §3.2 "better visibility").
//
// Sidecars create a span per request hop and propagate trace context via
// B3-style headers. The app runtime copies x-request-id and the b3 headers
// onto the sub-requests it spawns — exactly the cooperation Istio's
// bookinfo app performs — which is also what lets the provenance filter
// (core/) tie sub-requests back to the inbound request that caused them.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "http/header_map.h"
#include "sim/time.h"

namespace meshnet::mesh {

struct Span {
  std::string trace_id;
  std::string span_id;
  std::string parent_span_id;
  std::string service;
  std::string operation;
  sim::Time start = 0;
  sim::Time end = 0;
  bool error = false;

  sim::Duration duration() const noexcept { return end - start; }
};

/// Span context carried in HTTP headers.
struct TraceContext {
  std::string trace_id;
  std::string span_id;

  bool valid() const noexcept { return !trace_id.empty(); }

  static TraceContext extract(const http::HeaderMap& headers);
  void inject(http::HeaderMap& headers,
              const std::string& parent_span_id) const;
};

/// Collects finished spans. One tracer is shared mesh-wide (it stands in
/// for the Jaeger/Zipkin backend the control plane would export to).
class Tracer {
 public:
  /// Starts a span; `parent` may be invalid (root span), in which case a
  /// fresh trace id is allocated.
  Span start_span(const std::string& service, const std::string& operation,
                  const TraceContext& parent, sim::Time now);

  void finish_span(Span span, sim::Time now);

  const std::vector<Span>& spans() const noexcept { return finished_; }
  std::size_t span_count() const noexcept { return finished_.size(); }

  /// All spans belonging to one trace, in start order.
  std::vector<const Span*> trace(const std::string& trace_id) const;

  /// Keep only the most recent `limit` spans (memory bound for long runs);
  /// 0 disables collection entirely (benches).
  void set_retention(std::size_t limit) noexcept { retention_ = limit; }

  void clear() { finished_.clear(); }

 private:
  std::string next_id(std::string_view prefix);

  std::uint64_t counter_ = 0;
  std::size_t retention_ = SIZE_MAX;
  std::vector<Span> finished_;
};

}  // namespace meshnet::mesh
