#include "mesh/fault_filter.h"

#include <utility>

namespace meshnet::mesh {

FaultInjectionFilter::FaultInjectionFilter(FaultFilterConfig config,
                                           std::string stream_name)
    : config_(std::move(config)), rng_(config_.seed, stream_name) {}

FilterStatus FaultInjectionFilter::on_request(RequestContext& ctx) {
  if (!config_.path_prefix.empty() &&
      ctx.request.path.rfind(config_.path_prefix, 0) != 0) {
    return FilterStatus::kContinue;
  }
  ++seen_;

  // Envoy order: delay first, then abort — an aborted request still pays
  // the injected delay, so delayed-abort scenarios compose.
  if (config_.delay_fraction > 0.0 && rng_.bernoulli(config_.delay_fraction)) {
    sim::Duration extra = config_.delay;
    if (config_.delay_jitter_mean > 0) {
      extra += static_cast<sim::Duration>(
          rng_.exponential(static_cast<double>(config_.delay_jitter_mean)));
    }
    ctx.injected_delay += extra;
    ++delays_;
  }

  if (config_.abort_fraction > 0.0 && rng_.bernoulli(config_.abort_fraction)) {
    http::HttpResponse response;
    response.status = config_.abort_status;
    response.body = "fault injected";
    response.headers.set("x-mesh-fault", "abort");
    ctx.local_response = std::move(response);
    ++aborts_;
    return FilterStatus::kStopIteration;
  }
  return FilterStatus::kContinue;
}

}  // namespace meshnet::mesh
