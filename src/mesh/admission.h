#pragma once

// Priority-aware overload control at the sidecar inbound path.
//
// Past the saturation knee, a service's queue grows without bound and
// latency-sensitive and scavenger requests time out together — exactly
// the collapse the cross-layer priority header exists to prevent. The
// admission controller sits as the last inbound filter (after
// provenance has resolved the request's traffic class) and decides, per
// request: admit now, park in a bounded per-priority FIFO queue, or
// shed with a 503 carrying an `x-mesh-shed: <reason>` header.
//
// Discipline:
//  * Concurrency toward the local app is capped by an adaptive AIMD
//    limit (mesh/concurrency_limit.h) that tracks the service's latency
//    gradient — the mesh discovers capacity instead of being told.
//  * Queued requests dispatch strictly by priority class, FIFO within a
//    class. `reserve_slots` slots are usable only by the highest class,
//    so a latency-sensitive arrival never waits behind a full window of
//    admitted low-priority work.
//  * A shared queue budget: when full, a new arrival preempts the
//    newest queued entry of a strictly lower priority class (retries
//    first when `shed_retries_first`) — so high priority is never shed
//    while low priority holds a slot. If no lower-priority victim
//    exists, the arrival itself is shed (`queue-full`).
//  * Deadline-aware shedding: at dequeue (and at offer), a request
//    whose armed deadline cannot be met given the current latency
//    estimate is dropped (`deadline`) instead of wasting a slot.
//
// Shed responses are marked so the *caller's* sidecar treats them as
// non-retryable (unless RetryPolicy.retry_on_overloaded): retries
// re-enter admission on a fresh attempt rather than amplifying the
// overload.
//
// Like ConcurrencyLimit, the controller is simulator-free (`now` passed
// explicitly) so the model-based property test can drive it as a pure
// state machine.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "mesh/concurrency_limit.h"
#include "mesh/filter.h"
#include "obs/metric_registry.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace meshnet::mesh {

enum class ShedReason : std::uint8_t {
  kQueueFull,  ///< queue at capacity with no lower-priority victim
  kDeadline,   ///< armed deadline unmeetable given the latency estimate
  kPreempted,  ///< evicted from the queue by a higher-priority arrival
};

std::string_view shed_reason_name(ShedReason reason) noexcept;

struct AdmissionConfig {
  bool enabled = false;
  /// Shared queue budget across all priority classes.
  std::size_t queue_capacity = 128;
  /// Preemptive eviction targets queued retries before first tries.
  bool shed_retries_first = true;
  /// Concurrency slots only the highest priority class may occupy, so an
  /// LS arrival finds capacity without waiting out a low-priority burst.
  std::uint32_t reserve_slots = 0;
  ConcurrencyLimitConfig limit;
};

/// Monotonic counters mirrored outside the registry for cheap asserts in
/// tests and experiments.
struct AdmissionCounters {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;  ///< dispatched toward the app (direct + queued)
  std::uint64_t queued = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_preempted = 0;

  std::uint64_t shed_total() const noexcept {
    return shed_queue_full + shed_deadline + shed_preempted;
  }
};

class AdmissionController {
 public:
  struct Decision {
    enum class Outcome { kAdmitted, kQueued, kShed };
    Outcome outcome = Outcome::kAdmitted;
    ShedReason reason = ShedReason::kQueueFull;  ///< valid when kShed
    std::uint64_t ticket = 0;                    ///< valid when kQueued
  };

  /// Records admission_* series into `registry` when non-null, else into
  /// a private registry (unit tests).
  AdmissionController(std::string service, AdmissionConfig config,
                      obs::MetricRegistry* registry = nullptr);
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Offers one request. `deadline` is absolute (0 = none); `is_retry`
  /// marks upstream retry attempts (preferred eviction victims).
  Decision offer(TrafficClass klass, sim::Time deadline, bool is_retry,
                 sim::Time now);

  /// Attaches continuations to a kQueued ticket. Must be called before
  /// the next offer()/on_complete(); exactly one of the callbacks fires.
  void bind(std::uint64_t ticket, std::function<void()> on_dispatch,
            std::function<void(ShedReason)> on_shed);

  /// Releases the slot held by an admitted request, feeds the AIMD
  /// sampler, and drains the queues into any freed capacity.
  void on_complete(TrafficClass klass, sim::Duration latency, sim::Time now);

  std::uint32_t in_flight() const noexcept { return limit_.in_flight(); }
  std::uint32_t limit() const noexcept { return limit_.limit(); }
  std::size_t queue_depth() const noexcept;
  std::size_t queue_depth(TrafficClass klass) const noexcept;
  sim::Duration latency_estimate() const noexcept {
    return limit_.latency_estimate();
  }
  const AdmissionCounters& counters() const noexcept { return counters_; }
  const AdmissionConfig& config() const noexcept { return config_; }
  const std::string& service() const noexcept { return service_; }

 private:
  struct Entry {
    std::uint64_t ticket = 0;
    int rank = 0;
    TrafficClass klass = TrafficClass::kDefault;
    sim::Time deadline = 0;
    bool is_retry = false;
    std::function<void()> on_dispatch;
    std::function<void(ShedReason)> on_shed;
  };

  static int rank_of(TrafficClass klass) noexcept;
  bool has_capacity_for(int rank) const noexcept;
  bool deadline_unmeetable(sim::Time deadline, sim::Time now) const noexcept;
  void admit(int rank);
  void drain(sim::Time now);
  void record_shed(TrafficClass klass, ShedReason reason);

  std::string service_;
  AdmissionConfig config_;
  ConcurrencyLimit limit_;
  /// Admitted requests currently occupying non-reserved (low) capacity.
  std::uint32_t in_flight_low_ = 0;
  std::array<std::deque<Entry>, 3> queues_;  ///< indexed by rank
  std::uint64_t next_ticket_ = 1;
  AdmissionCounters counters_;

  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_ = nullptr;
  std::array<obs::Counter*, 3> accepted_by_class_{};
  std::array<obs::Counter*, 3> queued_by_class_{};
  std::array<obs::Counter*, 3> completed_by_class_{};
  std::array<std::array<obs::Counter*, 3>, 3> shed_by_class_reason_{};
  obs::Gauge* queue_depth_gauge_ = nullptr;       ///< high-water mark
  obs::Gauge* concurrency_limit_gauge_ = nullptr;
  obs::Counter* limit_increase_total_ = nullptr;
  obs::Counter* limit_decrease_total_ = nullptr;
};

/// The inbound-chain enforcement point. Resolves the request's priority
/// (ctx.traffic_class, falling back to the x-mesh-priority header) and
/// deadline (x-mesh-deadline-ms), then asks the controller. kAdmitted
/// continues the chain; kShed short-circuits with a marked 503; kQueued
/// pauses the chain — the sidecar binds dispatch/shed continuations.
/// The controller is fetched through `provider` so the filter can be
/// installed before the sidecar's controller exists (it is created on
/// the first config push that enables admission).
class AdmissionFilter : public HttpFilter {
 public:
  AdmissionFilter(sim::Simulator& sim,
                  std::function<AdmissionController*()> provider)
      : sim_(sim), provider_(std::move(provider)) {}

  std::string name() const override { return "admission"; }
  FilterStatus on_request(RequestContext& ctx) override;
  void on_response(RequestContext& ctx, http::HttpResponse& response) override;

 private:
  sim::Simulator& sim_;
  std::function<AdmissionController*()> provider_;
};

}  // namespace meshnet::mesh
