#pragma once

// Standard mesh filters that ship with every sidecar (the Istio-native
// functionality the case study builds on): distributed tracing, source
// service identity, request-id stamping, and authorization policy.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mesh/filter.h"
#include "mesh/tracing.h"
#include "sim/simulator.h"

namespace meshnet::mesh {

/// Creates a span per proxied request and propagates B3 trace context.
/// Also assigns an x-request-id when one is missing (ingress behaviour).
class TracingFilter final : public HttpFilter {
 public:
  TracingFilter(Tracer& tracer, sim::Simulator& sim, std::string service);

  std::string name() const override { return "tracing"; }
  FilterStatus on_request(RequestContext& ctx) override;
  void on_response(RequestContext& ctx, http::HttpResponse& response) override;

 private:
  Tracer& tracer_;
  sim::Simulator& sim_;
  std::string service_;
};

/// Stamps the caller's service identity onto outbound requests — the
/// header stands in for the mTLS peer certificate identity.
class SourceIdentityFilter final : public HttpFilter {
 public:
  explicit SourceIdentityFilter(std::string service)
      : service_(std::move(service)) {}

  std::string name() const override { return "source-identity"; }
  FilterStatus on_request(RequestContext& ctx) override;

 private:
  std::string service_;
};

/// Enforces destination allow-lists on the inbound side: if a policy for
/// `service` exists, only listed sources pass; others get 403.
class AuthorizationFilter final : public HttpFilter {
 public:
  AuthorizationFilter(std::string service,
                      const std::map<std::string, std::vector<std::string>>*
                          policies)
      : service_(std::move(service)), policies_(policies) {}

  std::string name() const override { return "authorization"; }
  FilterStatus on_request(RequestContext& ctx) override;

  std::uint64_t denied_count() const noexcept { return denied_; }

 private:
  std::string service_;
  const std::map<std::string, std::vector<std::string>>* policies_;
  std::uint64_t denied_ = 0;
};

}  // namespace meshnet::mesh
