#pragma once

// The sidecar proxy (Envoy's role in Istio).
//
// Every pod gets one. It owns two listeners:
//  * inbound  (pod_ip:15006) — remote sidecars connect here; requests run
//    the inbound filter chain (authz, tracing, provenance) and are then
//    forwarded to the colocated app over the pod-local loopback.
//  * outbound (pod_ip:15001) — the local app sends its sub-requests here;
//    requests run the outbound filter chain (classification, provenance,
//    priority routing), are routed by Host header to an upstream cluster,
//    an endpoint is picked (subset + circuit breaker + load balancer),
//    and the request rides a pooled connection to the remote sidecar,
//    with retries and per-try timeouts.
//
// A sidecar with gateway_mode=true is an ingress gateway: its outbound
// listener is exposed on the gateway port and there is no local app.
//
// Traffic classes map to per-class transport policy (congestion-control
// algorithm + DSCP mark); pools are keyed by (endpoint, class) so classes
// never share a transport connection.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "http/codec.h"
#include "mesh/admission.h"
#include "mesh/circuit_breaker.h"
#include "mesh/filter.h"
#include "mesh/health_checker.h"
#include "mesh/http_client.h"
#include "mesh/load_balancer.h"
#include "mesh/telemetry.h"
#include "mesh/tls_session.h"
#include "sim/random.h"
#include "mesh/tracing.h"
#include "transport/transport_host.h"

namespace meshnet::mesh {

struct RetryPolicy {
  int max_retries = 1;
  /// 0 disables the per-try timeout.
  sim::Duration per_try_timeout = 0;
  bool retry_on_5xx = true;
  bool retry_on_reset = true;
  sim::Duration backoff_base = sim::milliseconds(2);
  /// Cap on any single backoff sleep.
  sim::Duration backoff_max = sim::milliseconds(250);
  /// Decorrelated jitter (sleep = min(cap, uniform(base, 3*prev))) instead
  /// of deterministic linear backoff — avoids synchronized retry storms.
  bool backoff_jitter = true;

  /// Retry budget: retries may be at most this fraction of the cluster's
  /// in-flight requests (Envoy's retry_budget). 0 disables the budget and
  /// falls back to pure max_retries accounting.
  double retry_budget = 0.0;
  /// Floor below which the budget never bites, so low-traffic clusters
  /// can still retry at all.
  std::uint32_t retry_budget_min_concurrency = 3;

  /// Whether a 503 carrying the x-mesh-shed marker (the upstream's
  /// admission controller shed the request) is retryable. Off by
  /// default: retrying into a declared overload only amplifies it, and
  /// any retry that does go out re-enters admission like a fresh
  /// arrival (preferred shed victim).
  bool retry_on_overloaded = false;
};

/// Next retry sleep for attempt number `attempt` (1-based: the first
/// retry passes 1). With jitter disabled this is the legacy linear
/// `base * attempt`; with jitter it is AWS-style decorrelated jitter,
/// where `prev` is the previous sleep (0 on the first retry). Both are
/// clamped to [backoff_base, backoff_max].
sim::Duration next_retry_backoff(const RetryPolicy& policy, int attempt,
                                 sim::Duration prev, sim::RngStream& rng);

// Certificate lives in mesh/tls_session.h (the TLS layer consumes it
// directly); it is re-exported here for the many existing includers.

struct ClusterSpec {
  std::string name;
  std::vector<cluster::Endpoint> endpoints;
  LbPolicy lb = LbPolicy::kRoundRobin;
  CircuitBreakerConfig breaker;
  /// When a subset constraint matches no endpoint, fall back to the full
  /// healthy set instead of failing (Envoy's ANY_ENDPOINT fallback).
  bool subset_fallback = true;
  /// Active health checking for this cluster's endpoints (off by default;
  /// the chaos experiments turn it on).
  HealthCheckConfig health_check;
  /// Initiate mTLS to this cluster's sidecars (compiled by the control
  /// plane from the mesh-wide default + per-service overrides).
  bool mtls = false;
};

/// Per-traffic-class transport policy — where the cross-layer design
/// attaches scavenger congestion control and DSCP marks to mesh classes.
struct TrafficClassPolicy {
  transport::CcAlgorithm cc = transport::CcAlgorithm::kReno;
  net::Dscp dscp = net::Dscp::kDefault;
};

struct SidecarConfig {
  std::string service_name;
  net::Port app_port = 8080;       ///< 0 = no local app (gateway).
  net::Port inbound_port = 15006;
  net::Port outbound_port = 15001;
  bool gateway_mode = false;

  /// Control-plane config generation this snapshot was compiled from.
  /// Monotonically increasing; a sidecar rejects pushes older than what
  /// it already runs. 0 means "unversioned" (construction defaults and
  /// direct test pokes) and always applies.
  std::uint64_t epoch = 0;

  /// This workload's identity certificate; rotation arrives as a config
  /// push with a new serial.
  Certificate identity_cert;

  /// TLS session-layer knobs. `tls.enabled` here means "this sidecar's
  /// inbound listener accepts TLS" (the listener stays permissive:
  /// plaintext peers and health probes are sniffed through); whether a
  /// *client* initiates TLS is per-cluster (ClusterSpec::mtls).
  TlsParams tls;

  /// Host header -> cluster name. Hosts not listed route to the cluster
  /// with the same name, if one exists.
  std::map<std::string, std::string> routes;
  std::map<std::string, ClusterSpec> clusters;

  RetryPolicy retry;
  sim::Duration request_timeout = sim::seconds(15);

  /// Priority-aware overload control on the inbound path (off by
  /// default). The controller is created on the first config push that
  /// enables it; later pushes keep the running controller's state.
  AdmissionConfig admission;

  /// Destination-service allow-lists (mTLS-style authorization policy):
  /// if this sidecar's service has an entry, only the listed source
  /// services may call it. No entry = allow all.
  std::map<std::string, std::vector<std::string>> authorization;

  std::map<TrafficClass, TrafficClassPolicy> class_policies;
  std::uint32_t transport_mss = 1460;
  std::size_t max_pool_connections = 256;

  /// Proxy processing cost per traversal direction (request and response
  /// each pay base + Exp(jitter)); models Envoy's userspace overhead,
  /// which the paper (§3.6) quotes at ~3 ms p99 for a sidecar pair.
  sim::Duration proxy_overhead_base = sim::microseconds(150);
  sim::Duration proxy_overhead_jitter = sim::microseconds(100);

  /// Observes every upstream transport connection the sidecar opens,
  /// tagged with its traffic class (cross-layer SDN advertisement hook).
  std::function<void(transport::Connection&, TrafficClass)>
      upstream_connection_hook;
};

/// Sanity-checks a compiled config before it replaces the running one.
/// Returns an empty string when valid, else a human-readable reason —
/// the sidecar nacks the push and keeps its last-good config (the
/// control plane rolls back on nack).
std::string validate_config(const SidecarConfig& config);

/// Structural fingerprint of a compiled config. Epoch is excluded (two
/// epochs with identical payloads hash equal, which is what lets the
/// control plane skip no-op pushes); the certificate serial is included
/// so rotation propagates as a real push. Hooks contribute only their
/// presence (std::function has no stable content identity). Composed
/// from hash_policy_section + per-cluster hash_cluster_spec, so the
/// delta push (mesh/config_delta.h) diffs with the same fingerprints
/// the no-op skip uses.
std::uint64_t hash_sidecar_config(const SidecarConfig& config);

/// Fingerprint of one cluster's spec (endpoints, LB, breaker, health
/// check) — the unit of change a ConfigDelta upserts.
std::uint64_t hash_cluster_spec(const ClusterSpec& spec);

/// Fingerprint of everything in a config that is neither a cluster nor a
/// route (identity, retry, timeouts, admission, authz, transport, cert).
std::uint64_t hash_policy_section(const SidecarConfig& config);

struct ConfigDelta;  // mesh/config_delta.h

struct SidecarStats {
  std::uint64_t inbound_requests = 0;
  std::uint64_t outbound_requests = 0;
  std::uint64_t upstream_retries = 0;
  std::uint64_t upstream_failures = 0;   ///< exhausted retries
  std::uint64_t local_responses = 0;     ///< filter short-circuits
  std::uint64_t timeouts = 0;
  std::uint64_t retries_denied_by_budget = 0;
  /// Retryable failures not retried because the upstream declared
  /// overload (x-mesh-shed) and retry_on_overloaded is off.
  std::uint64_t retries_suppressed_by_overload = 0;
  std::uint64_t health_probes_answered = 0;
  /// Downstream connections that closed while a request was in flight;
  /// the abandoned request is finished as a local 499 so its span and
  /// telemetry sample still close (the finish_outbound funnel).
  std::uint64_t downstream_aborts = 0;
  std::uint64_t configs_applied = 0;
  std::uint64_t configs_rejected = 0;  ///< invalid or stale-epoch pushes
  std::uint64_t deltas_applied = 0;    ///< incremental pushes applied
  /// Delta pushes refused because the base/target fingerprint did not
  /// match (the control plane falls back to a full push).
  std::uint64_t delta_mismatches = 0;
  /// Second-level panic picks: every health-admitted endpoint was
  /// breaker-rejected, so the pick fell back to the full endpoint set.
  std::uint64_t panic_picks = 0;
};

class Sidecar {
 public:
  Sidecar(sim::Simulator& sim, cluster::Pod& pod, Tracer& tracer,
          TelemetrySink* telemetry, SidecarConfig config);
  ~Sidecar();
  Sidecar(const Sidecar&) = delete;
  Sidecar& operator=(const Sidecar&) = delete;

  /// Opens the listeners. Call once after construction.
  void start();

  /// Replaces routing/cluster/policy state (an xDS push). Listener ports
  /// and service identity are fixed at construction. Returns false — and
  /// keeps the running config untouched — when the push is invalid
  /// (validate_config) or stale (an epoch the sidecar already moved
  /// past); `last_config_error()` then says why.
  bool apply_config(SidecarConfig config);

  /// Applies an incremental push (mesh/config_delta.h): reconstructs the
  /// full candidate from the running config + delta, verifies the
  /// base/target fingerprints, and funnels it through apply_config.
  /// Returns false on stale epoch, fingerprint mismatch
  /// ("delta-base-mismatch" / "delta-target-mismatch" — the control
  /// plane falls back to a full push) or validation failure.
  bool apply_config_delta(const ConfigDelta& delta);

  /// Config generation currently applied (0 until a versioned push).
  std::uint64_t config_epoch() const noexcept { return config_.epoch; }

  /// Why the most recent apply_config returned false; empty after a
  /// successful apply.
  const std::string& last_config_error() const noexcept {
    return last_config_error_;
  }

  FilterChain& inbound_filters() noexcept { return inbound_chain_; }
  FilterChain& outbound_filters() noexcept { return outbound_chain_; }

  const SidecarConfig& config() const noexcept { return config_; }
  SidecarConfig& mutable_config() noexcept { return config_; }
  cluster::Pod& pod() noexcept { return pod_; }
  const cluster::Pod& pod() const noexcept { return pod_; }
  const SidecarStats& stats() const noexcept { return stats_; }

  /// Outstanding upstream requests to one endpoint (used by the
  /// least-request balancer and exposed for tests).
  std::uint64_t active_requests_to(const std::string& pod_name) const;

  /// The breaker guarding one endpoint (created on first use).
  CircuitBreaker& breaker_for(const std::string& cluster_name,
                              const std::string& pod_name);

  /// The active health checker (created in start(); null before).
  HealthChecker* health_checker() noexcept { return health_checker_.get(); }

  /// The inbound admission controller (null until a pushed config
  /// enables admission).
  AdmissionController* admission_controller() noexcept {
    return admission_.get();
  }

 private:
  struct ServerSession {
    std::uint64_t id = 0;
    transport::Connection* conn = nullptr;
    std::unique_ptr<http::HttpParser> parser;
    /// Set once the first downstream byte arrives: a TLS ClientHello
    /// starts a server-side TLS channel, anything else stays plaintext.
    bool sniffed = false;
    std::shared_ptr<TlsChannel> tls;
    FilterDirection direction = FilterDirection::kInbound;
    std::deque<http::HttpRequest> pending;
    bool busy = false;
    // Upstream call state for the active request (HTTP/1.1 serializes one
    // request per downstream connection, so one set suffices).
    sim::EventId try_timer = sim::kInvalidEventId;
    HttpClientPool* upstream_pool = nullptr;
    HttpClientPool::RequestId upstream_req = 0;
    std::string upstream_cluster;
    std::string upstream_endpoint;
    sim::Time deadline = 0;
    sim::EventId deadline_timer = sim::kInvalidEventId;
    // Bumped on every response; async timers and backoff wakeups captured
    // for an earlier request compare against it and stand down.
    std::uint64_t request_seq = 0;
    // The in-flight request's context while busy, so a downstream close
    // can still finish the request (and its span) through the
    // finish_outbound funnel.
    std::shared_ptr<RequestContext> active;
  };

  struct PoolKey {
    net::IpAddress ip;
    net::Port port;
    TrafficClass traffic_class;
    bool tls;
    auto operator<=>(const PoolKey&) const = default;
  };

  using Ctx = std::shared_ptr<RequestContext>;

  void accept_session(transport::Connection& conn, FilterDirection direction);
  void on_session_request(std::uint64_t session_id, http::HttpRequest req);
  void pump_session(ServerSession& session);
  void process_request(std::uint64_t session_id, http::HttpRequest req,
                       FilterDirection direction);
  void process_request_now(std::uint64_t session_id, http::HttpRequest req,
                           FilterDirection direction);
  sim::Duration proxy_delay();
  void respond_to_session(std::uint64_t session_id, const Ctx& ctx,
                          http::HttpResponse response);
  void continue_request(std::uint64_t session_id, Ctx ctx,
                        FilterDirection direction);
  void forward_to_app(std::uint64_t session_id, Ctx ctx);
  void route_and_forward(std::uint64_t session_id, Ctx ctx);
  /// Single exit point for outbound requests: records telemetry (when an
  /// upstream cluster is known) and the access log, runs the outbound
  /// response filters — closing the request span on every path — and
  /// answers the downstream session.
  void finish_outbound(std::uint64_t session_id, const Ctx& ctx,
                       const std::string& cluster_name,
                       const std::string& endpoint_pod,
                       http::HttpResponse response);
  void sync_health_targets();
  void attempt_upstream(std::uint64_t session_id, Ctx ctx);
  void on_request_deadline(std::uint64_t session_id, Ctx ctx,
                           std::uint64_t seq);
  void on_upstream_result(std::uint64_t session_id, Ctx ctx,
                          const std::string& cluster_name,
                          const std::string& endpoint_pod,
                          std::optional<http::HttpResponse> response,
                          const std::string& error);
  const ClusterSpec* resolve_cluster(const std::string& host) const;
  std::vector<const cluster::Endpoint*> eligible_endpoints(
      const ClusterSpec& spec, const RequestContext& ctx,
      bool ignore_health = false);
  HttpClientPool& pool_for(const cluster::Endpoint& endpoint,
                           TrafficClass traffic_class, net::Port port,
                           bool mtls);
  /// Feeds downstream bytes (decrypted when the session is TLS) into the
  /// session's HTTP parser, aborting the connection on a parse error.
  void feed_session_parser(ServerSession& session, std::string_view data);
  /// Upgrades an inbound session to TLS (a ClientHello was sniffed).
  void setup_server_tls(ServerSession& session);
  /// Lazily created shared TLS state (ticket cache, tls_* series); only
  /// meshes that actually enable mTLS ever create it, so legacy metric
  /// snapshots stay byte-identical.
  TlsRuntime& tls_runtime();
  LoadBalancer& balancer_for(const ClusterSpec& spec);
  transport::ConnectionOptions connection_options_for(
      TrafficClass traffic_class) const;
  http::HttpResponse make_local_response(int status, std::string_view body);

  sim::Simulator& sim_;
  cluster::Pod& pod_;
  Tracer& tracer_;
  TelemetrySink* telemetry_;
  SidecarConfig config_;
  FilterChain inbound_chain_;
  FilterChain outbound_chain_;
  SidecarStats stats_;

  std::uint64_t next_session_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<ServerSession>> sessions_;
  std::map<PoolKey, std::unique_ptr<HttpClientPool>> pools_;
  std::unique_ptr<HttpClientPool> app_pool_;
  std::map<std::string, std::unique_ptr<LoadBalancer>> balancers_;
  std::map<std::string, std::uint64_t> active_per_endpoint_;
  std::map<std::string, CircuitBreaker> breakers_;
  std::unique_ptr<HealthChecker> health_checker_;
  /// Per-cluster in-flight upstream tries, and how many are retry tries
  /// (attempt > 0) — the denominator/numerator of the retry budget.
  std::map<std::string, std::uint64_t> inflight_per_cluster_;
  std::map<std::string, std::uint64_t> inflight_retries_per_cluster_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<TlsRuntime> tls_runtime_;
  sim::RngStream overhead_rng_;
  sim::RngStream retry_rng_;
  std::string last_config_error_;
  bool started_ = false;
};

}  // namespace meshnet::mesh
