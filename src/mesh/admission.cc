#include "mesh/admission.h"

#include <charconv>
#include <iterator>
#include <utility>

#include "http/header_map.h"

namespace meshnet::mesh {

namespace {

constexpr std::array<TrafficClass, 3> kClassOfRank = {
    TrafficClass::kLatencySensitive,
    TrafficClass::kDefault,
    TrafficClass::kScavenger,
};

int parse_int_or(std::string_view text, int fallback) noexcept {
  int value = fallback;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc{} ? value : fallback;
}

}  // namespace

std::string_view shed_reason_name(ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue-full";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kPreempted:
      return "preempted";
  }
  return "?";
}

AdmissionController::AdmissionController(std::string service,
                                         AdmissionConfig config,
                                         obs::MetricRegistry* registry)
    : service_(std::move(service)), config_(config), limit_(config.limit) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  for (int rank = 0; rank < 3; ++rank) {
    const std::string klass =
        std::string(traffic_class_name(kClassOfRank[rank]));
    const obs::Labels labels = {{"service", service_}, {"class", klass}};
    accepted_by_class_[rank] =
        &registry_->counter("admission_accepted_total", labels);
    queued_by_class_[rank] =
        &registry_->counter("admission_queued_total", labels);
    completed_by_class_[rank] =
        &registry_->counter("admission_completed_total", labels);
    for (const ShedReason reason :
         {ShedReason::kQueueFull, ShedReason::kDeadline,
          ShedReason::kPreempted}) {
      shed_by_class_reason_[rank][static_cast<int>(reason)] =
          &registry_->counter(
              "admission_shed_total",
              {{"service", service_},
               {"class", klass},
               {"reason", std::string(shed_reason_name(reason))}});
    }
  }
  const obs::Labels service_labels = {{"service", service_}};
  queue_depth_gauge_ =
      &registry_->gauge("admission_queue_depth_peak", service_labels);
  concurrency_limit_gauge_ =
      &registry_->gauge("admission_concurrency_limit", service_labels);
  concurrency_limit_gauge_->set(static_cast<double>(limit_.limit()));
  limit_increase_total_ =
      &registry_->counter("admission_limit_increase_total", service_labels);
  limit_decrease_total_ =
      &registry_->counter("admission_limit_decrease_total", service_labels);
  limit_.set_on_limit_change([this](std::uint32_t new_limit) {
    const auto old_limit =
        static_cast<std::uint32_t>(concurrency_limit_gauge_->value());
    if (new_limit > old_limit) limit_increase_total_->inc();
    if (new_limit < old_limit) limit_decrease_total_->inc();
    concurrency_limit_gauge_->set(static_cast<double>(new_limit));
  });
}

int AdmissionController::rank_of(TrafficClass klass) noexcept {
  switch (klass) {
    case TrafficClass::kLatencySensitive:
      return 0;
    case TrafficClass::kDefault:
      return 1;
    case TrafficClass::kScavenger:
      return 2;
  }
  return 1;
}

bool AdmissionController::has_capacity_for(int rank) const noexcept {
  if (!limit_.has_capacity()) return false;
  if (rank == 0) return true;
  // Non-highest classes may not touch the reserved slots.
  const std::uint32_t limit = limit_.limit();
  const std::uint32_t usable =
      config_.reserve_slots >= limit ? 0 : limit - config_.reserve_slots;
  return in_flight_low_ < usable;
}

bool AdmissionController::deadline_unmeetable(sim::Time deadline,
                                              sim::Time now) const noexcept {
  if (deadline == 0) return false;
  const sim::Duration estimate = limit_.latency_estimate();
  return estimate > 0 && now + estimate > deadline;
}

std::size_t AdmissionController::queue_depth() const noexcept {
  return queues_[0].size() + queues_[1].size() + queues_[2].size();
}

std::size_t AdmissionController::queue_depth(TrafficClass klass) const
    noexcept {
  return queues_[rank_of(klass)].size();
}

void AdmissionController::record_shed(TrafficClass klass, ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      ++counters_.shed_queue_full;
      break;
    case ShedReason::kDeadline:
      ++counters_.shed_deadline;
      break;
    case ShedReason::kPreempted:
      ++counters_.shed_preempted;
      break;
  }
  shed_by_class_reason_[rank_of(klass)][static_cast<int>(reason)]->inc();
}

void AdmissionController::admit(int rank) {
  limit_.on_start();
  if (rank > 0) ++in_flight_low_;
  ++counters_.accepted;
  accepted_by_class_[rank]->inc();
}

AdmissionController::Decision AdmissionController::offer(TrafficClass klass,
                                                         sim::Time deadline,
                                                         bool is_retry,
                                                         sim::Time now) {
  ++counters_.offered;
  const int rank = rank_of(klass);

  if (deadline_unmeetable(deadline, now)) {
    record_shed(klass, ShedReason::kDeadline);
    return {Decision::Outcome::kShed, ShedReason::kDeadline, 0};
  }

  // Capacity plus an empty same-or-higher-priority backlog means the
  // request bypasses the queue entirely. (The drain loop keeps queues
  // empty whenever their class has capacity, so the backlog check only
  // bites in the reserved-slot corner: an LS arrival may overtake queued
  // low-priority work, which is the point.)
  bool backlog = false;
  for (int r = 0; r <= rank; ++r) backlog = backlog || !queues_[r].empty();
  if (!backlog && has_capacity_for(rank)) {
    admit(rank);
    return {Decision::Outcome::kAdmitted, ShedReason::kQueueFull, 0};
  }

  Entry victim;  // preempted entry, notified after queue surgery
  bool have_victim = false;
  if (queue_depth() >= config_.queue_capacity) {
    // Evict the newest queued entry of a strictly lower priority class
    // (retries first when configured); if none, shed the arrival itself.
    for (int r = 2; r > rank && !have_victim; --r) {
      auto& queue = queues_[r];
      if (queue.empty()) continue;
      auto victim_it = std::prev(queue.end());
      if (config_.shed_retries_first) {
        for (auto it = queue.rbegin(); it != queue.rend(); ++it) {
          if (it->is_retry) {
            victim_it = std::prev(it.base());
            break;
          }
        }
      }
      victim = std::move(*victim_it);
      queue.erase(victim_it);
      have_victim = true;
    }
    if (!have_victim) {
      record_shed(klass, ShedReason::kQueueFull);
      return {Decision::Outcome::kShed, ShedReason::kQueueFull, 0};
    }
    record_shed(victim.klass, ShedReason::kPreempted);
  }

  Entry entry;
  entry.ticket = next_ticket_++;
  entry.rank = rank;
  entry.klass = klass;
  entry.deadline = deadline;
  entry.is_retry = is_retry;
  queues_[rank].push_back(std::move(entry));
  ++counters_.queued;
  queued_by_class_[rank]->inc();
  if (static_cast<double>(queue_depth()) > queue_depth_gauge_->value()) {
    queue_depth_gauge_->set(static_cast<double>(queue_depth()));
  }
  const std::uint64_t ticket = next_ticket_ - 1;

  // Notify the victim only now that the queues are consistent: its shed
  // continuation may re-enter offer() (e.g. a zero-overhead sidecar
  // answering the shed and pumping the next pipelined request).
  if (have_victim && victim.on_shed) victim.on_shed(ShedReason::kPreempted);

  return {Decision::Outcome::kQueued, ShedReason::kQueueFull, ticket};
}

void AdmissionController::bind(std::uint64_t ticket,
                               std::function<void()> on_dispatch,
                               std::function<void(ShedReason)> on_shed) {
  for (auto& queue : queues_) {
    for (Entry& entry : queue) {
      if (entry.ticket == ticket) {
        entry.on_dispatch = std::move(on_dispatch);
        entry.on_shed = std::move(on_shed);
        return;
      }
    }
  }
}

void AdmissionController::on_complete(TrafficClass klass,
                                      sim::Duration latency, sim::Time now) {
  if (rank_of(klass) > 0 && in_flight_low_ > 0) --in_flight_low_;
  ++counters_.completed;
  completed_by_class_[rank_of(klass)]->inc();
  limit_.on_complete(latency, now);
  drain(now);
}

void AdmissionController::drain(sim::Time now) {
  for (int rank = 0; rank < 3; ++rank) {
    auto& queue = queues_[rank];
    while (!queue.empty()) {
      if (!limit_.has_capacity()) return;  // no capacity for anyone
      if (!has_capacity_for(rank)) break;  // reserved slots only — next rank
      Entry entry = std::move(queue.front());
      queue.pop_front();
      if (deadline_unmeetable(entry.deadline, now)) {
        record_shed(entry.klass, ShedReason::kDeadline);
        if (entry.on_shed) entry.on_shed(ShedReason::kDeadline);
        continue;
      }
      admit(entry.rank);
      if (entry.on_dispatch) entry.on_dispatch();
    }
  }
}

FilterStatus AdmissionFilter::on_request(RequestContext& ctx) {
  AdmissionController* controller = provider_ ? provider_() : nullptr;
  if (controller == nullptr || ctx.direction != FilterDirection::kInbound) {
    return FilterStatus::kContinue;
  }

  TrafficClass klass = ctx.traffic_class;
  if (klass == TrafficClass::kDefault) {
    // No provenance filter resolved a class; fall back to the raw
    // cross-layer priority header ("high"/"low", paper §4.3 step 1).
    const auto priority =
        ctx.request.headers.get(http::headers::Id::kMeshPriority);
    if (priority == "high") {
      klass = TrafficClass::kLatencySensitive;
    } else if (priority == "low") {
      klass = TrafficClass::kScavenger;
    }
    ctx.traffic_class = klass;
  }
  ctx.admission_class = klass;

  sim::Time deadline = 0;
  if (const auto ms =
          ctx.request.headers.get(http::headers::Id::kDeadlineMs)) {
    const int remaining_ms = parse_int_or(*ms, 0);
    if (remaining_ms > 0) deadline = sim_.now() + sim::milliseconds(remaining_ms);
  }
  const bool is_retry =
      parse_int_or(
          ctx.request.headers.get_or(http::headers::Id::kRetryAttempt, "1"),
          1) > 1;

  const AdmissionController::Decision decision =
      controller->offer(klass, deadline, is_retry, sim_.now());
  switch (decision.outcome) {
    case AdmissionController::Decision::Outcome::kAdmitted:
      ctx.admission_admitted = true;
      ctx.admission_dispatch_time = sim_.now();
      return FilterStatus::kContinue;
    case AdmissionController::Decision::Outcome::kQueued:
      ctx.admission_ticket = decision.ticket;
      return FilterStatus::kPause;
    case AdmissionController::Decision::Outcome::kShed:
      break;
  }
  ctx.shed_reason = std::string(shed_reason_name(decision.reason));
  http::HttpResponse response;
  response.status = 503;
  response.body = "admission shed: " + ctx.shed_reason;
  response.headers.set(http::headers::Id::kShedReason, ctx.shed_reason);
  ctx.local_response = std::move(response);
  return FilterStatus::kStopIteration;
}

void AdmissionFilter::on_response(RequestContext& ctx,
                                  http::HttpResponse& /*response*/) {
  if (!ctx.admission_admitted) return;
  AdmissionController* controller = provider_ ? provider_() : nullptr;
  if (controller == nullptr) return;
  ctx.admission_admitted = false;
  controller->on_complete(ctx.admission_class,
                          sim_.now() - ctx.admission_dispatch_time,
                          sim_.now());
}

}  // namespace meshnet::mesh
