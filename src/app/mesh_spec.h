#pragma once

// Declarative mesh construction (MESHSCALE, DESIGN.md §13).
//
// A MeshSpec is the whole mesh as data: nodes, services with replica
// counts, the ingress gateway, out-of-mesh pods, declared service->service
// calls and the operator policy set. MeshBuilder (app/mesh_builder.h)
// turns one spec into the live object graph — cluster, pods, sidecars,
// control plane, app containers — in a single fixed order, so two
// processes building the same spec get bit-identical meshes (same pod
// IPs, same certificate serials, same registry versions).
//
// The spec is the single source of truth for the knobs that the
// imperative path forces callers to keep in sync by hand: a service's
// SidecarInjectionOptions and its app's MicroserviceOptions share ports
// via app_options(), and the declared `calls` edges can be compiled into
// control-plane cluster scopes (derive_cluster_scopes).
//
// These files live in app/ because the builder instantiates app-layer
// Microservices (app links against mesh and cluster, not the other way
// round), but the vocabulary is cluster-level — hence the namespace.

#include <string>
#include <vector>

#include "app/microservice.h"
#include "cluster/cluster.h"
#include "cluster/topology_gen.h"
#include "mesh/control_plane.h"

namespace meshnet::cluster {

/// One service: `replicas` pods (named "<name>-v1", "<name>-v2", ...),
/// each with a sidecar, plus an app container per replica when `handler`
/// is set.
/// Per-service mTLS stance. kInherit follows the mesh-wide default
/// (MeshPolicies::tls.enabled); kOn/kOff compile into an explicit
/// MeshPolicies::mtls_overrides entry for this service.
enum class MtlsMode { kInherit, kOff, kOn };

struct ServiceSpec {
  std::string name;
  int replicas = 1;
  /// Service-registry port (what other sidecars dial; the paper's 9080).
  net::Port port = 9080;
  /// Scheduling target; empty = the spec's first node.
  std::string node;
  /// Sidecar attachment; also the source of the app's ports (see
  /// app_options()).
  mesh::SidecarInjectionOptions sidecar;
  /// App behaviour; null = pods + sidecars only (traffic sinks, or pods
  /// driven directly by a test).
  app::Handler handler;
  /// App runtime knobs. The port fields are ignored — app_options()
  /// derives them from `sidecar` so the pair cannot drift apart.
  app::MicroserviceOptions app;
  /// Downstream services this one calls. Validated against the spec
  /// (dangling targets are an error) and, with derive_cluster_scopes,
  /// compiled into MeshPolicies::cluster_scopes.
  std::vector<std::string> calls;
  /// mTLS on this service's inbound listener (and, transitively, on
  /// every client cluster that targets it). kInherit = mesh default.
  MtlsMode mtls = MtlsMode::kInherit;
  /// vNIC defaults for every replica.
  PodOptions pod;
  /// Per-replica overrides (labels, bottleneck links); when non-empty it
  /// must have exactly `replicas` entries.
  std::vector<PodOptions> replica_options;
};

/// The ingress gateway: a gateway-mode sidecar on a dedicated pod,
/// external traffic enters on `port`.
struct GatewaySpec {
  bool enabled = false;
  std::string pod_name = "istio-ingressgateway";
  std::string service = "gateway";
  net::Port port = 80;
  std::string node;  ///< empty = the spec's first node
  PodOptions pod;
};

/// A pod outside the mesh (load generators, external clients).
struct ExternalPodSpec {
  std::string name;
  std::string node;  ///< empty = the spec's first node
  PodOptions pod;
};

struct MeshSpec {
  ClusterConfig cluster;
  std::vector<std::string> nodes = {"kind-worker"};
  GatewaySpec gateway;
  std::vector<ServiceSpec> services;
  std::vector<ExternalPodSpec> external_pods;
  mesh::MeshPolicies policies;
  /// Compile each service's declared `calls` into a control-plane
  /// cluster scope (services with no declared calls keep the legacy
  /// see-every-cluster view). Entries already present in
  /// policies.cluster_scopes win.
  bool derive_cluster_scopes = false;
  bool start_control_plane = true;
  sim::Duration poll_interval = sim::milliseconds(100);
};

/// Returns "" when the spec is well-formed, else a description of the
/// first problem found (duplicate service name, zero replicas, dangling
/// call target, replica_options size mismatch, unknown node, ...).
std::string validate_mesh_spec(const MeshSpec& spec);

/// The replica pod names a ServiceSpec expands to ("<name>-v<i+1>").
std::vector<std::string> service_pod_names(const ServiceSpec& service);

/// Spec-roundtrip: the app options MeshBuilder instantiates for a
/// service — `service.app` with its ports pinned to the sidecar spec
/// (the single source of truth for the app<->sidecar port pair).
app::MicroserviceOptions app_options(const ServiceSpec& service);

/// Adapter from the generated layered-DAG topologies (cluster/
/// topology_gen.h): one ServiceSpec per GenService, `calls` from the
/// DAG edges, no handlers (the experiment attaches behaviour).
struct TopologyMeshOptions {
  std::string service_prefix = "svc-";
  net::Port port = 9080;
  int replicas = 1;
};
MeshSpec mesh_spec_from_topology(const GenTopology& topology,
                                 const TopologyMeshOptions& options = {});

/// The adapter's service name for a GenService id.
std::string topology_service_name(const TopologyMeshOptions& options, int id);

}  // namespace meshnet::cluster
