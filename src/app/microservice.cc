#include "app/microservice.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace meshnet::app {

namespace {
/// Headers the app copies from the inbound request onto sub-requests
/// (mesh cooperation contract; see class comment).
constexpr http::headers::Id kPropagatedHeaders[] = {
    http::headers::Id::kRequestId,
    http::headers::Id::kTraceId,
    http::headers::Id::kSpanId,
};
}  // namespace

Microservice::Microservice(sim::Simulator& sim, cluster::Pod& pod,
                           Handler handler, MicroserviceOptions options)
    : sim_(sim),
      pod_(pod),
      handler_(std::move(handler)),
      options_(options) {
  server_ = std::make_unique<SimpleHttpServer>(
      sim_, pod_.transport(), options_.app_port,
      [this](http::HttpRequest request, SimpleHttpServer::Responder respond) {
        serve(std::move(request), std::move(respond));
      });
  mesh::HttpClientPool::Options pool_options;
  pool_options.max_connections = options_.max_client_connections;
  // App <-> sidecar is pod-local loopback (64 KB MTU).
  pool_options.connection.mss = 65496;
  sidecar_client_ = std::make_unique<mesh::HttpClientPool>(
      sim_, pod_.transport(),
      net::SocketAddress{pod_.ip(), options_.sidecar_outbound_port},
      pool_options, pod_.name() + ":egress");
}

void Microservice::serve(http::HttpRequest request,
                         SimpleHttpServer::Responder respond) {
  if (options_.max_concurrency > 0 &&
      in_service_ >= options_.max_concurrency) {
    // All workers busy: wait for admission. With priority scheduling,
    // high-priority requests enter ahead of every queued low/default one.
    if (options_.priority_scheduling &&
        request.headers.get_or(http::headers::Id::kMeshPriority, "") == "high") {
      auto it = admission_queue_.begin();
      while (it != admission_queue_.end() &&
             it->first.headers.get_or(http::headers::Id::kMeshPriority, "") ==
                 "high") {
        ++it;
      }
      admission_queue_.emplace(it, std::move(request), std::move(respond));
    } else {
      admission_queue_.emplace_back(std::move(request), std::move(respond));
    }
    max_queue_seen_ =
        std::max<std::uint64_t>(max_queue_seen_, admission_queue_.size());
    return;
  }
  admit(std::move(request), std::move(respond));
}

void Microservice::finish_one() {
  if (in_service_ > 0) --in_service_;
  if (!admission_queue_.empty() &&
      (options_.max_concurrency == 0 ||
       in_service_ < options_.max_concurrency)) {
    auto [request, respond] = std::move(admission_queue_.front());
    admission_queue_.pop_front();
    admit(std::move(request), std::move(respond));
  }
}

void Microservice::admit(http::HttpRequest request,
                         SimpleHttpServer::Responder respond) {
  ++in_service_;
  // Release the worker slot once the response goes out.
  respond = [this, inner = std::move(respond)](http::HttpResponse response) {
    inner(std::move(response));
    finish_one();
  };
  HandlerResult plan = handler_(request);
  auto shared_req = std::make_shared<http::HttpRequest>(std::move(request));
  // A degraded pod (fault injection) serves each request proportionally
  // slower; the factor is sampled at admission, like a CPU-starved worker.
  const sim::Duration delay = static_cast<sim::Duration>(
      static_cast<double>(plan.processing_delay) * pod_.compute_multiplier());
  sim_.schedule_after(delay, [this, shared_req = std::move(shared_req),
                              plan = std::move(plan),
                              respond = std::move(respond)]() mutable {
    fan_out(std::move(shared_req), std::move(plan), std::move(respond));
  });
}

void Microservice::fan_out(std::shared_ptr<http::HttpRequest> request,
                           HandlerResult plan,
                           SimpleHttpServer::Responder respond) {
  struct FanState {
    std::size_t outstanding = 0;
    std::size_t body_bytes = 0;
    bool failed = false;
    HandlerResult plan;
    SimpleHttpServer::Responder respond;
  };
  auto state = std::make_shared<FanState>();
  state->plan = std::move(plan);
  state->respond = std::move(respond);
  state->outstanding = state->plan.calls.size();
  state->body_bytes = state->plan.response_bytes;

  auto finish = [this, state] {
    http::HttpResponse response;
    if (state->failed && options_.fail_on_sub_error) {
      response.status = 502;
      response.body = "upstream dependency failed";
    } else {
      response.status = state->plan.status;
      response.body.assign(state->body_bytes, 'x');
    }
    response.headers.set("x-app", pod_.service());
    state->respond(std::move(response));
  };

  if (state->outstanding == 0) {
    finish();
    return;
  }

  for (const SubCall& call : state->plan.calls) {
    http::HttpRequest sub;
    sub.method = call.method;
    sub.path = call.path;
    sub.headers.set(http::headers::Id::kHost, call.service);
    for (const http::headers::Id header : kPropagatedHeaders) {
      if (const auto value = request->headers.get(header)) {
        sub.headers.set(header, *value);
      }
    }
    if (options_.propagate_priority_header) {
      if (const auto value =
              request->headers.get(http::headers::Id::kMeshPriority)) {
        sub.headers.set(http::headers::Id::kMeshPriority, *value);
      }
    }
    ++sub_sent_;
    sidecar_client_->request(
        std::move(sub),
        [state, finish](std::optional<http::HttpResponse> response,
                        const std::string& /*error*/) {
          if (!response || !response->ok()) {
            state->failed = true;
          } else if (state->plan.aggregate_sub_bodies) {
            state->body_bytes += response->body.size();
          }
          if (--state->outstanding == 0) finish();
        });
  }
}

}  // namespace meshnet::app
