#include "app/mesh_spec.h"

#include <algorithm>
#include <set>

namespace meshnet::cluster {

namespace {

bool known_node(const MeshSpec& spec, const std::string& node) {
  return node.empty() || std::find(spec.nodes.begin(), spec.nodes.end(),
                                   node) != spec.nodes.end();
}

}  // namespace

std::string validate_mesh_spec(const MeshSpec& spec) {
  if (spec.nodes.empty()) return "spec has no nodes";
  std::set<std::string> service_names;
  for (const ServiceSpec& service : spec.services) {
    if (service.name.empty()) return "service with empty name";
    if (!service_names.insert(service.name).second) {
      return "duplicate service '" + service.name + "'";
    }
  }
  std::set<std::string> pod_names;
  if (spec.gateway.enabled) {
    pod_names.insert(spec.gateway.pod_name);
    if (!known_node(spec, spec.gateway.node)) {
      return "gateway on unknown node '" + spec.gateway.node + "'";
    }
  }
  for (const ServiceSpec& service : spec.services) {
    if (service.replicas < 1) {
      return "service '" + service.name + "' has zero replicas";
    }
    if (!service.replica_options.empty() &&
        service.replica_options.size() !=
            static_cast<std::size_t>(service.replicas)) {
      return "service '" + service.name + "' has " +
             std::to_string(service.replica_options.size()) +
             " replica_options for " + std::to_string(service.replicas) +
             " replicas";
    }
    if (!known_node(spec, service.node)) {
      return "service '" + service.name + "' on unknown node '" +
             service.node + "'";
    }
    for (const std::string& target : service.calls) {
      if (!service_names.contains(target)) {
        return "service '" + service.name + "' calls unknown service '" +
               target + "'";
      }
    }
    for (const std::string& pod : service_pod_names(service)) {
      if (!pod_names.insert(pod).second) {
        return "duplicate pod name '" + pod + "'";
      }
    }
  }
  for (const ExternalPodSpec& external : spec.external_pods) {
    if (external.name.empty()) return "external pod with empty name";
    if (!pod_names.insert(external.name).second) {
      return "duplicate pod name '" + external.name + "'";
    }
    if (!known_node(spec, external.node)) {
      return "external pod '" + external.name + "' on unknown node '" +
             external.node + "'";
    }
  }
  return "";
}

std::vector<std::string> service_pod_names(const ServiceSpec& service) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(service.replicas));
  for (int i = 0; i < service.replicas; ++i) {
    names.push_back(service.name + "-v" + std::to_string(i + 1));
  }
  return names;
}

app::MicroserviceOptions app_options(const ServiceSpec& service) {
  app::MicroserviceOptions options = service.app;
  options.app_port = service.sidecar.app_port;
  options.sidecar_outbound_port = service.sidecar.outbound_port;
  return options;
}

std::string topology_service_name(const TopologyMeshOptions& options,
                                  int id) {
  return options.service_prefix + std::to_string(id);
}

MeshSpec mesh_spec_from_topology(const GenTopology& topology,
                                 const TopologyMeshOptions& options) {
  MeshSpec spec;
  spec.services.reserve(topology.services.size());
  for (const GenService& gen : topology.services) {
    ServiceSpec service;
    service.name = topology_service_name(options, gen.id);
    service.replicas = options.replicas;
    service.port = options.port;
    for (const int edge_index : gen.out_edges) {
      const GenEdge& edge = topology.edges[static_cast<std::size_t>(edge_index)];
      const std::string target = topology_service_name(options, edge.to);
      if (std::find(service.calls.begin(), service.calls.end(), target) ==
          service.calls.end()) {
        service.calls.push_back(target);
      }
    }
    spec.services.push_back(std::move(service));
  }
  return spec;
}

}  // namespace meshnet::cluster
