#include "app/elibrary.h"

#include <cstdlib>
#include <utility>

#include "util/strings.h"

namespace meshnet::app {

mesh::MeshPolicies ElibraryOptions::default_policies() {
  mesh::MeshPolicies policies;
  policies.retry.max_retries = 1;
  policies.retry.per_try_timeout = 0;
  policies.request_timeout = sim::seconds(60);
  // Jumbo-frame MSS: KIND veth pairs on one host commonly run large MTUs;
  // this also keeps the event count tractable (DESIGN.md §6).
  policies.transport_mss = 8960;
  return policies;
}

Elibrary::Elibrary(sim::Simulator& sim, ElibraryOptions options)
    : sim_(sim), options_(std::move(options)) {
  cluster::MeshBuilder builder(sim_);
  std::string error;
  mesh_ = builder.build(make_spec(), &error);
  if (mesh_ == nullptr) {
    // The spec below is static, so this is unreachable short of a
    // programming error in this file.
    std::abort();
  }
  gateway_ = mesh_->gateway_pod();
  client_ = mesh_->pod("external-client");
}

cluster::MeshSpec Elibrary::make_spec() const {
  const std::size_t base = options_.component_bytes;
  const std::size_t bulk = base * options_.analytics_multiplier;
  const sim::Duration think = options_.service_time;

  cluster::MeshSpec spec;
  spec.cluster.default_link_bps = options_.link_bps;
  spec.cluster.default_link_delay = options_.link_delay;
  // One worker node, as in the paper's single-server KIND deployment.
  spec.nodes = {"kind-worker"};
  spec.policies = options_.policies;

  spec.gateway.enabled = true;
  spec.gateway.port = kGatewayPort;

  MicroserviceOptions base_options;
  base_options.max_concurrency = options_.app_max_concurrency;
  base_options.priority_scheduling = options_.app_priority_scheduling;

  // frontend: fans out to details and reviews, regardless of workload;
  // the path decides which flavour the downstream serves.
  {
    cluster::ServiceSpec frontend;
    frontend.name = "frontend";
    frontend.calls = {"details", "reviews"};
    frontend.app = base_options;
    frontend.app.propagate_priority_header =
        options_.frontend_propagates_priority;
    frontend.handler = [base, think](const http::HttpRequest& request) {
      HandlerResult plan;
      plan.processing_delay = think;
      plan.response_bytes = base / 4;
      const bool analytics =
          util::starts_with(request.path, Elibrary::kLiPathPrefix);
      const std::string item = std::string(
          request.path.substr(request.path.find_last_of('/') + 1));
      plan.calls.push_back(SubCall{"details", "/details/" + item});
      plan.calls.push_back(SubCall{
          "reviews",
          (analytics ? "/reviews/analytics/" : "/reviews/") + item});
      return plan;
    };
    spec.services.push_back(std::move(frontend));
  }

  // details: a leaf; always small.
  {
    cluster::ServiceSpec details;
    details.name = "details";
    details.app = base_options;
    details.handler = [base, think](const http::HttpRequest&) {
      HandlerResult plan;
      plan.processing_delay = think;
      plan.response_bytes = base;
      return plan;
    };
    spec.services.push_back(std::move(details));
  }

  // reviews (two replicas, same code): calls ratings; analytics paths ask
  // ratings for the bulk payload. The replicas are labelled priority
  // high/low so priority-subset routing has somewhere to route.
  {
    cluster::ServiceSpec reviews;
    reviews.name = "reviews";
    reviews.replicas = 2;
    reviews.calls = {"ratings"};
    reviews.app = base_options;
    cluster::PodOptions high;
    high.labels = {{"priority", "high"}, {"version", "v1"}};
    cluster::PodOptions low;
    low.labels = {{"priority", "low"}, {"version", "v2"}};
    reviews.replica_options = {high, low};
    reviews.handler = [base, think](const http::HttpRequest& request) {
      HandlerResult plan;
      plan.processing_delay = think;
      plan.response_bytes = base / 2;
      const bool analytics =
          util::starts_with(request.path, "/reviews/analytics/");
      const std::string item = std::string(
          request.path.substr(request.path.find_last_of('/') + 1));
      plan.calls.push_back(SubCall{
          "ratings", (analytics ? "/ratings/bulk/" : "/ratings/") + item});
      return plan;
    };
    spec.services.push_back(std::move(reviews));
  }

  // ratings: the leaf behind the bottleneck; bulk requests return the
  // ~200x analytics payload.
  {
    cluster::ServiceSpec ratings;
    ratings.name = "ratings";
    ratings.pod.link_bps = options_.bottleneck_bps;  // the 1 Gbps bottleneck
    ratings.app = base_options;
    ratings.handler = [base, bulk, think](const http::HttpRequest& request) {
      HandlerResult plan;
      plan.processing_delay = think;
      plan.response_bytes =
          util::starts_with(request.path, "/ratings/bulk/") ? bulk : base;
      return plan;
    };
    spec.services.push_back(std::move(ratings));
  }

  // The external client: a host outside the mesh with a fat pipe in.
  spec.external_pods.push_back(cluster::ExternalPodSpec{
      "external-client", "",
      cluster::PodOptions{40e9, sim::microseconds(50), {}}});
  return spec;
}

net::SocketAddress Elibrary::gateway_address() const {
  return net::SocketAddress{gateway_->ip(), kGatewayPort};
}

net::Link& Elibrary::bottleneck_link() {
  return mesh_->pod("ratings-v1")->egress_link();
}

std::size_t Elibrary::expected_ls_body_bytes() const {
  const std::size_t base = options_.component_bytes;
  // frontend base/4 + details base + reviews (base/2 + ratings base)
  return base / 4 + base + base / 2 + base;
}

std::size_t Elibrary::expected_li_body_bytes() const {
  const std::size_t base = options_.component_bytes;
  return base / 4 + base + base / 2 +
         base * options_.analytics_multiplier;
}

}  // namespace meshnet::app
