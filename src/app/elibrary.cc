#include "app/elibrary.h"

#include <utility>

#include "util/strings.h"

namespace meshnet::app {

mesh::MeshPolicies ElibraryOptions::default_policies() {
  mesh::MeshPolicies policies;
  policies.retry.max_retries = 1;
  policies.retry.per_try_timeout = 0;
  policies.request_timeout = sim::seconds(60);
  // Jumbo-frame MSS: KIND veth pairs on one host commonly run large MTUs;
  // this also keeps the event count tractable (DESIGN.md §6).
  policies.transport_mss = 8960;
  return policies;
}

Elibrary::Elibrary(sim::Simulator& sim, ElibraryOptions options)
    : sim_(sim), options_(std::move(options)) {
  build_topology();
  build_services();
}

void Elibrary::build_topology() {
  cluster::ClusterConfig cluster_config;
  cluster_config.default_link_bps = options_.link_bps;
  cluster_config.default_link_delay = options_.link_delay;
  cluster_ = std::make_unique<cluster::Cluster>(sim_, cluster_config);

  // One worker node, as in the paper's single-server KIND deployment.
  cluster_->add_node("kind-worker");

  gateway_ = &cluster_->add_pod("kind-worker", "istio-ingressgateway",
                                "gateway", 0);
  cluster_->add_pod("kind-worker", "frontend-v1", "frontend", 9080);
  cluster_->add_pod("kind-worker", "details-v1", "details", 9080);
  {
    cluster::PodOptions high;
    high.labels = {{"priority", "high"}, {"version", "v1"}};
    cluster_->add_pod("kind-worker", "reviews-v1", "reviews", 9080, high);
    cluster::PodOptions low;
    low.labels = {{"priority", "low"}, {"version", "v2"}};
    cluster_->add_pod("kind-worker", "reviews-v2", "reviews", 9080, low);
  }
  {
    cluster::PodOptions ratings;
    ratings.link_bps = options_.bottleneck_bps;  // the 1 Gbps bottleneck
    cluster_->add_pod("kind-worker", "ratings-v1", "ratings", 9080, ratings);
  }
  // The external client: a host outside the mesh with a fat pipe in.
  client_ = &cluster_->add_pod("kind-worker", "external-client", "", 0,
                               cluster::PodOptions{40e9, sim::microseconds(50),
                                                   {}});

  control_plane_ =
      std::make_unique<mesh::ControlPlane>(sim_, *cluster_, options_.policies);
}

void Elibrary::build_services() {
  const std::size_t base = options_.component_bytes;
  const std::size_t bulk = base * options_.analytics_multiplier;
  const sim::Duration think = options_.service_time;

  MicroserviceOptions base_options;
  base_options.max_concurrency = options_.app_max_concurrency;
  base_options.priority_scheduling = options_.app_priority_scheduling;

  auto inject = [&](const std::string& pod_name) -> cluster::Pod& {
    cluster::Pod* pod = cluster_->find_pod(pod_name);
    mesh::SidecarInjectionOptions options;
    options.app_port = 8080;
    control_plane_->inject_sidecar(*pod, options);
    return *pod;
  };

  // Gateway sidecar: no app, outbound listener exposed on port 80.
  {
    mesh::SidecarInjectionOptions gw;
    gw.gateway_mode = true;
    gw.outbound_port = kGatewayPort;
    control_plane_->inject_sidecar(*gateway_, gw);
  }

  // frontend: fans out to details and reviews, regardless of workload;
  // the path decides which flavour the downstream serves.
  {
    cluster::Pod& pod = inject("frontend-v1");
    MicroserviceOptions options = base_options;
    options.propagate_priority_header = options_.frontend_propagates_priority;
    services_.push_back(std::make_unique<Microservice>(
        sim_, pod,
        [base, think](const http::HttpRequest& request) {
          HandlerResult plan;
          plan.processing_delay = think;
          plan.response_bytes = base / 4;
          const bool analytics =
              util::starts_with(request.path, Elibrary::kLiPathPrefix);
          const std::string item =
              std::string(request.path.substr(request.path.find_last_of('/') +
                                              1));
          plan.calls.push_back(SubCall{"details", "/details/" + item});
          plan.calls.push_back(SubCall{
              "reviews", (analytics ? "/reviews/analytics/" : "/reviews/") +
                             item});
          return plan;
        },
        options));
  }

  // details: a leaf; always small.
  {
    cluster::Pod& pod = inject("details-v1");
    services_.push_back(std::make_unique<Microservice>(
        sim_, pod, [base, think](const http::HttpRequest&) {
          HandlerResult plan;
          plan.processing_delay = think;
          plan.response_bytes = base;
          return plan;
        },
        base_options));
  }

  // reviews (two replicas, same code): calls ratings; analytics paths ask
  // ratings for the bulk payload.
  for (const std::string pod_name : {"reviews-v1", "reviews-v2"}) {
    cluster::Pod& pod = inject(pod_name);
    services_.push_back(std::make_unique<Microservice>(
        sim_, pod, [base, think](const http::HttpRequest& request) {
          HandlerResult plan;
          plan.processing_delay = think;
          plan.response_bytes = base / 2;
          const bool analytics =
              util::starts_with(request.path, "/reviews/analytics/");
          const std::string item =
              std::string(request.path.substr(request.path.find_last_of('/') +
                                              1));
          plan.calls.push_back(SubCall{
              "ratings", (analytics ? "/ratings/bulk/" : "/ratings/") + item});
          return plan;
        },
        base_options));
  }

  // ratings: the leaf behind the bottleneck; bulk requests return the
  // ~200x analytics payload.
  {
    cluster::Pod& pod = inject("ratings-v1");
    services_.push_back(std::make_unique<Microservice>(
        sim_, pod, [base, bulk, think](const http::HttpRequest& request) {
          HandlerResult plan;
          plan.processing_delay = think;
          plan.response_bytes =
              util::starts_with(request.path, "/ratings/bulk/") ? bulk : base;
          return plan;
        },
        base_options));
  }

  control_plane_->start();
}

net::SocketAddress Elibrary::gateway_address() const {
  return net::SocketAddress{gateway_->ip(), kGatewayPort};
}

net::Link& Elibrary::bottleneck_link() {
  return cluster_->find_pod("ratings-v1")->egress_link();
}

std::size_t Elibrary::expected_ls_body_bytes() const {
  const std::size_t base = options_.component_bytes;
  // frontend base/4 + details base + reviews (base/2 + ratings base)
  return base / 4 + base + base / 2 + base;
}

std::size_t Elibrary::expected_li_body_bytes() const {
  const std::size_t base = options_.component_bytes;
  return base / 4 + base + base / 2 +
         base * options_.analytics_multiplier;
}

}  // namespace meshnet::app
