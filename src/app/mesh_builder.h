#pragma once

// MeshBuilder: MeshSpec (app/mesh_spec.h) -> live mesh.
//
// Construction order is fixed and documented because it is part of the
// determinism contract: pod creation order assigns IPs (CNI-style
// 10.244.node.pod) and sidecar injection order assigns certificate
// serials, so the order below reproduces the hand-built meshes (e.g. the
// e-library) bit-identically:
//
//   1. cluster + nodes (spec order)
//   2. gateway pod, then each service's replica pods (spec order), then
//      external pods
//   3. control plane (with derived cluster scopes, if requested)
//   4. sidecar injection: gateway first, then every service replica in
//      spec order
//   5. one Microservice per replica of each service with a handler
//   6. control_plane().start(poll_interval)
//
// Direct add_pod + inject_sidecar wiring outside this file is the legacy
// path; new topology code goes through a spec (CI greps for violations).

#include <memory>
#include <string>
#include <vector>

#include "app/mesh_spec.h"

namespace meshnet::cluster {

/// The object graph one spec builds; owns everything for the sim's
/// lifetime. Accessors hand out the same layer objects the imperative
/// path would.
class BuiltMesh {
 public:
  BuiltMesh(const BuiltMesh&) = delete;
  BuiltMesh& operator=(const BuiltMesh&) = delete;

  Cluster& cluster() noexcept { return *cluster_; }
  mesh::ControlPlane& control_plane() noexcept { return *control_plane_; }
  const MeshSpec& spec() const noexcept { return spec_; }

  Pod* pod(const std::string& name) { return cluster_->find_pod(name); }
  /// nullptr when the spec has no gateway.
  Pod* gateway_pod() noexcept { return gateway_; }
  /// Where external clients connect (gateway required).
  net::SocketAddress gateway_address() const {
    return net::SocketAddress{gateway_->ip(), spec_.gateway.port};
  }
  const std::vector<std::unique_ptr<app::Microservice>>& microservices()
      const noexcept {
    return microservices_;
  }

 private:
  friend class MeshBuilder;
  BuiltMesh() = default;

  MeshSpec spec_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<mesh::ControlPlane> control_plane_;
  std::vector<std::unique_ptr<app::Microservice>> microservices_;
  Pod* gateway_ = nullptr;
};

class MeshBuilder {
 public:
  explicit MeshBuilder(sim::Simulator& sim) : sim_(sim) {}

  /// Validates and builds. Returns nullptr on an invalid spec, with the
  /// validation message in *error (when non-null).
  std::unique_ptr<BuiltMesh> build(MeshSpec spec,
                                   std::string* error = nullptr);

 private:
  sim::Simulator& sim_;
};

}  // namespace meshnet::cluster
