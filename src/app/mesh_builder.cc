#include "app/mesh_builder.h"

#include <utility>

namespace meshnet::cluster {

std::unique_ptr<BuiltMesh> MeshBuilder::build(MeshSpec spec,
                                              std::string* error) {
  const std::string problem = validate_mesh_spec(spec);
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    return nullptr;
  }
  if (error != nullptr) error->clear();

  auto mesh = std::unique_ptr<BuiltMesh>(new BuiltMesh());

  // 1. Cluster + nodes.
  mesh->cluster_ = std::make_unique<Cluster>(sim_, spec.cluster);
  for (const std::string& node : spec.nodes) {
    mesh->cluster_->add_node(node);
  }
  const std::string& default_node = spec.nodes.front();
  const auto node_for = [&default_node](const std::string& node) {
    return node.empty() ? default_node : node;
  };

  // 2. Pods: gateway, service replicas in spec order, external pods.
  // This order fixes every pod's IP.
  if (spec.gateway.enabled) {
    mesh->gateway_ = &mesh->cluster_->add_pod(
        node_for(spec.gateway.node), spec.gateway.pod_name,
        spec.gateway.service, 0, spec.gateway.pod);
  }
  for (const ServiceSpec& service : spec.services) {
    const std::vector<std::string> pods = service_pod_names(service);
    for (int i = 0; i < service.replicas; ++i) {
      const PodOptions& options =
          service.replica_options.empty()
              ? service.pod
              : service.replica_options[static_cast<std::size_t>(i)];
      mesh->cluster_->add_pod(node_for(service.node),
                              pods[static_cast<std::size_t>(i)],
                              service.name, service.port, options);
    }
  }
  for (const ExternalPodSpec& external : spec.external_pods) {
    mesh->cluster_->add_pod(node_for(external.node), external.name, "", 0,
                            external.pod);
  }

  // 3. Control plane, with the declared call graph compiled into cluster
  // scopes when requested (explicit spec entries win).
  mesh::MeshPolicies policies = spec.policies;
  if (spec.derive_cluster_scopes) {
    for (const ServiceSpec& service : spec.services) {
      if (!service.calls.empty()) {
        policies.cluster_scopes.emplace(service.name, service.calls);
      }
    }
  }
  // Per-service mtls knobs compile into override entries (explicit
  // policy entries win, mirroring cluster scopes above).
  for (const ServiceSpec& service : spec.services) {
    if (service.mtls != MtlsMode::kInherit) {
      policies.mtls_overrides.emplace(service.name,
                                      service.mtls == MtlsMode::kOn);
    }
  }
  mesh->control_plane_ = std::make_unique<mesh::ControlPlane>(
      sim_, *mesh->cluster_, std::move(policies));

  // 4. Sidecars: gateway first, then replicas in spec order. This order
  // fixes every certificate serial.
  if (spec.gateway.enabled) {
    mesh->control_plane_->inject_sidecar(
        *mesh->gateway_,
        mesh::SidecarInjectionOptions::gateway(spec.gateway.port));
  }
  for (const ServiceSpec& service : spec.services) {
    for (const std::string& pod_name : service_pod_names(service)) {
      mesh->control_plane_->inject_sidecar(*mesh->cluster_->find_pod(pod_name),
                                           service.sidecar);
    }
  }

  // 5. App containers (construction is passive — listeners register, no
  // events schedule — so doing this after all injections is equivalent
  // to the legacy interleaved order).
  for (const ServiceSpec& service : spec.services) {
    if (!service.handler) continue;
    const app::MicroserviceOptions options = app_options(service);
    for (const std::string& pod_name : service_pod_names(service)) {
      mesh->microservices_.push_back(std::make_unique<app::Microservice>(
          sim_, *mesh->cluster_->find_pod(pod_name), service.handler,
          options));
    }
  }

  // 6. Begin watching discovery (mints the first broadcast epoch).
  if (spec.start_control_plane) {
    mesh->control_plane_->start(spec.poll_interval);
  }
  mesh->spec_ = std::move(spec);
  return mesh;
}

}  // namespace meshnet::cluster
