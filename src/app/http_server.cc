#include "app/http_server.h"

#include <utility>

#include "util/logging.h"

namespace meshnet::app {

SimpleHttpServer::SimpleHttpServer(sim::Simulator& sim,
                                   transport::TransportHost& host,
                                   net::Port port, Handler handler)
    : sim_(sim), handler_(std::move(handler)) {
  host.listen(port, [this](transport::Connection& conn) {
    auto session = std::make_unique<Session>();
    Session* raw = session.get();
    raw->id = next_id_++;
    raw->conn = &conn;
    raw->parser =
        std::make_unique<http::HttpParser>(http::ParserKind::kRequest);
    const std::uint64_t id = raw->id;
    raw->parser->set_on_request([this, id](http::HttpRequest request) {
      on_request(id, std::move(request));
    });
    conn.set_on_data([this, raw, id](std::string_view data) {
      if (!raw->parser->feed(data)) {
        MESHNET_WARN() << "http server: parse error";
        sim_.schedule_after(0, [this, id] {
          const auto it = sessions_.find(id);
          if (it != sessions_.end()) it->second->conn->abort();
        });
      }
    });
    conn.set_on_closed([this, id](bool) { sessions_.erase(id); });
    sessions_.emplace(id, std::move(session));
  });
}

void SimpleHttpServer::on_request(std::uint64_t session_id,
                                  http::HttpRequest request) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  it->second->pending.push_back(std::move(request));
  pump(*it->second);
}

void SimpleHttpServer::pump(Session& session) {
  if (session.busy || session.pending.empty()) return;
  session.busy = true;
  http::HttpRequest request = std::move(session.pending.front());
  session.pending.pop_front();
  const std::uint64_t id = session.id;
  ++served_;
  handler_(std::move(request), [this, id](http::HttpResponse response) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;  // client went away
    Session& s = *it->second;
    s.conn->send(http::serialize_response(response));
    s.busy = false;
    pump(s);
  });
}

}  // namespace meshnet::app
