#pragma once

// The application-container runtime: a microservice that serves HTTP
// requests by (optionally) fanning out sub-requests to other services
// *through its sidecar* and composing the responses.
//
// The runtime cooperates with the mesh exactly the way Istio's bookinfo
// app does: it copies x-request-id and the B3 trace headers from the
// inbound request onto every sub-request it spawns. It does NOT copy the
// priority header by default — priority propagation is the mesh's job
// (the provenance filter), which is the paper's point: apps stay
// unmodified. Set propagate_priority_header=true to model the paper's
// front-end, which does copy the bits itself.

#include <cstdint>
#include <deque>
#include <utility>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/http_server.h"
#include "cluster/cluster.h"
#include "mesh/http_client.h"
#include "sim/random.h"

namespace meshnet::app {

/// One sub-request the handler wants issued (all SubCalls run in
/// parallel after the processing delay, like a typical async fan-out).
struct SubCall {
  std::string service;  ///< destination service (becomes the Host header)
  std::string path = "/";
  std::string method = "GET";
};

/// A handler's plan for serving one request.
struct HandlerResult {
  sim::Duration processing_delay = 0;
  std::vector<SubCall> calls;
  /// Bytes of this service's own contribution to the response body.
  std::size_t response_bytes = 128;
  /// Add the sub-responses' body bytes to the response (data flows up the
  /// call tree, which is what makes the e-library bottleneck carry the
  /// analytics bytes end to end).
  bool aggregate_sub_bodies = true;
  int status = 200;
};

using Handler = std::function<HandlerResult(const http::HttpRequest&)>;

struct MicroserviceOptions {
  net::Port app_port = 8080;
  net::Port sidecar_outbound_port = 15001;
  bool propagate_priority_header = false;
  std::size_t max_client_connections = 256;
  /// Respond 502 if any sub-call fails (else compose what arrived).
  bool fail_on_sub_error = true;

  /// Compute model: at most this many requests in service at once (a
  /// worker-per-request server); 0 = unlimited. Excess requests wait in
  /// an admission queue.
  int max_concurrency = 0;
  /// Order the admission queue by x-mesh-priority (paper §5 "prioritized
  /// request queuing" — extending prioritization from the network to the
  /// compute resource). FIFO within a class.
  bool priority_scheduling = false;
};

class Microservice {
 public:
  Microservice(sim::Simulator& sim, cluster::Pod& pod, Handler handler,
               MicroserviceOptions options = {});
  Microservice(const Microservice&) = delete;
  Microservice& operator=(const Microservice&) = delete;

  const std::string& service() const noexcept { return pod_.service(); }
  std::uint64_t requests_served() const noexcept {
    return server_->requests_served();
  }
  std::uint64_t sub_requests_sent() const noexcept { return sub_sent_; }
  int in_service() const noexcept { return in_service_; }
  std::size_t admission_queue_depth() const noexcept {
    return admission_queue_.size();
  }
  std::uint64_t max_admission_queue_seen() const noexcept {
    return max_queue_seen_;
  }

 private:
  void serve(http::HttpRequest request, SimpleHttpServer::Responder respond);
  void admit(http::HttpRequest request, SimpleHttpServer::Responder respond);
  void finish_one();
  void fan_out(std::shared_ptr<http::HttpRequest> request,
               HandlerResult plan, SimpleHttpServer::Responder respond);

  sim::Simulator& sim_;
  cluster::Pod& pod_;
  Handler handler_;
  MicroserviceOptions options_;
  std::unique_ptr<SimpleHttpServer> server_;
  std::unique_ptr<mesh::HttpClientPool> sidecar_client_;
  std::uint64_t sub_sent_ = 0;
  int in_service_ = 0;
  std::deque<std::pair<http::HttpRequest, SimpleHttpServer::Responder>>
      admission_queue_;
  std::uint64_t max_queue_seen_ = 0;
};

}  // namespace meshnet::app
