#pragma once

// The e-library microservice application of the paper's prototype (§4.3,
// Fig. 3) — Istio's bookinfo sample recast as an e-library:
//
//   external -> [istio ingress gateway] -> front end -> { details,
//                reviews-1 / reviews-2 } ; reviews -> ratings
//
// All pods run on one node (the paper's single 32-core server under
// KIND). Inter-pod vNICs are 15 Gbps except the ratings pod's, which is
// the 1 Gbps bottleneck between reviews and ratings. Reviews has two
// replicas labelled priority=high / priority=low so priority-subset
// routing has somewhere to route.
//
// Two request families flow through the same tree:
//   GET /product/<n>    latency-sensitive page load: small responses.
//   GET /analytics/<n>  latency-insensitive batch scan: the ratings
//                       component returns a response ~multiplier x larger
//                       (paper: ~200x), and bodies aggregate up the tree,
//                       so the big bytes cross the bottleneck.

#include <memory>
#include <string>

#include "app/mesh_builder.h"
#include "app/microservice.h"
#include "cluster/cluster.h"
#include "mesh/control_plane.h"

namespace meshnet::app {

struct ElibraryOptions {
  double link_bps = 15e9;         ///< paper: 15 Gbps emulated links
  double bottleneck_bps = 1e9;    ///< paper: 1 Gbps reviews<->ratings
  sim::Duration link_delay = sim::microseconds(20);

  std::size_t component_bytes = 8 * 1024;   ///< LS per-component payload
  std::size_t analytics_multiplier = 200;   ///< paper: ~200x larger
  sim::Duration service_time = sim::milliseconds(2);  ///< app think time/hop

  /// Paper §4.3 step 1: the front-end app itself attaches the priority
  /// bits onto the sub-requests it spawns; deeper services rely on the
  /// mesh's provenance propagation.
  bool frontend_propagates_priority = true;

  /// Compute model for every microservice instance: worker count (0 =
  /// unlimited) and whether the admission queue is priority-ordered
  /// (paper §5 "prioritized request queuing").
  int app_max_concurrency = 0;
  bool app_priority_scheduling = false;

  mesh::MeshPolicies policies = default_policies();

  static mesh::MeshPolicies default_policies();
};

class Elibrary {
 public:
  static constexpr std::string_view kLsPathPrefix = "/product";
  static constexpr std::string_view kLiPathPrefix = "/analytics";
  static constexpr net::Port kGatewayPort = 80;

  Elibrary(sim::Simulator& sim, ElibraryOptions options = {});
  Elibrary(const Elibrary&) = delete;
  Elibrary& operator=(const Elibrary&) = delete;

  cluster::Cluster& cluster() noexcept { return mesh_->cluster(); }
  mesh::ControlPlane& control_plane() noexcept {
    return mesh_->control_plane();
  }
  const ElibraryOptions& options() const noexcept { return options_; }

  /// Where external clients (the load generator) connect.
  net::SocketAddress gateway_address() const;

  /// The external client pod (outside the mesh, like wrk2 on the host).
  cluster::Pod& client_pod() noexcept { return *client_; }

  /// The contended link: the ratings pod's egress vNIC.
  net::Link& bottleneck_link();

  cluster::Pod* pod(const std::string& name) { return mesh_->pod(name); }

  /// Expected LS / LI end-to-end response body sizes (for tests).
  std::size_t expected_ls_body_bytes() const;
  std::size_t expected_li_body_bytes() const;

 private:
  /// The whole app as data: the declarative equivalent of the old
  /// hand-wired build_topology()/build_services() pair.
  cluster::MeshSpec make_spec() const;

  sim::Simulator& sim_;
  ElibraryOptions options_;
  std::unique_ptr<cluster::BuiltMesh> mesh_;
  cluster::Pod* client_ = nullptr;
  cluster::Pod* gateway_ = nullptr;
};

}  // namespace meshnet::app
