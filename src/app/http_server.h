#pragma once

// A minimal asynchronous HTTP/1.1 server used by application containers
// (and tests). Accepts connections on one port, parses requests, and
// hands each to a handler together with a respond callback. Responses may
// complete asynchronously and out of order across connections; within a
// connection, HTTP/1.1 ordering is preserved.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "http/codec.h"
#include "http/message.h"
#include "transport/transport_host.h"

namespace meshnet::app {

class SimpleHttpServer {
 public:
  using Responder = std::function<void(http::HttpResponse)>;
  using Handler = std::function<void(http::HttpRequest, Responder)>;

  SimpleHttpServer(sim::Simulator& sim, transport::TransportHost& host,
                   net::Port port, Handler handler);
  SimpleHttpServer(const SimpleHttpServer&) = delete;
  SimpleHttpServer& operator=(const SimpleHttpServer&) = delete;

  std::uint64_t requests_served() const noexcept { return served_; }
  std::size_t open_sessions() const noexcept { return sessions_.size(); }

 private:
  struct Session {
    std::uint64_t id = 0;
    transport::Connection* conn = nullptr;
    std::unique_ptr<http::HttpParser> parser;
    std::deque<http::HttpRequest> pending;
    bool busy = false;
  };

  void on_request(std::uint64_t session_id, http::HttpRequest request);
  void pump(Session& session);

  sim::Simulator& sim_;
  Handler handler_;
  std::uint64_t next_id_ = 1;
  std::uint64_t served_ = 0;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
};

}  // namespace meshnet::app
